// Tests for the weighted undirected Graph.
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/laplacian.h"

namespace specpart::graph {
namespace {

TEST(Graph, MergesParallelEdges) {
  Graph g(3, {{0, 1, 1.0}, {1, 0, 2.0}, {1, 2, 3.0}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 6.0);
  EXPECT_DOUBLE_EQ(g.degree(1), 6.0);
  EXPECT_DOUBLE_EQ(g.degree(0), 3.0);
}

TEST(Graph, DropsSelfLoops) {
  Graph g(2, {{0, 0, 5.0}, {0, 1, 1.0}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.degree(0), 1.0);
}

TEST(Graph, EdgesCanonicalized) {
  Graph g(3, {{2, 0, 1.0}});
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edges()[0].u, 0u);
  EXPECT_EQ(g.edges()[0].v, 2u);
}

TEST(Graph, AdjacencyIteration) {
  Graph g(4, {{0, 1, 1.0}, {0, 2, 2.0}, {0, 3, 3.0}});
  double sum = 0.0;
  int count = 0;
  for (std::size_t s = g.adjacency_begin(0); s < g.adjacency_end(0); ++s) {
    sum += g.neighbour(s).weight;
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(sum, 6.0);
  EXPECT_EQ(g.adjacency_end(1) - g.adjacency_begin(1), 1u);
}

TEST(Graph, Components) {
  Graph g(6, {{0, 1, 1.0}, {1, 2, 1.0}, {3, 4, 1.0}});
  EXPECT_EQ(g.num_components(), 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_FALSE(g.connected());
  const auto labels = g.component_labels();
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[3], labels[5]);
}

TEST(Graph, ConnectedGraph) {
  Graph g(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.num_components(), 1u);
}

TEST(Graph, EmptyGraph) {
  Graph g(0, {});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, InducedSubgraph) {
  Graph g(5, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}, {3, 4, 4.0}, {0, 4, 5.0}});
  const Graph sub = g.induced_subgraph({1, 2, 3});
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // (1,2) and (2,3) survive
  EXPECT_DOUBLE_EQ(sub.total_edge_weight(), 5.0);
  // Vertex i of sub = nodes[i]: edge (0,1) in sub is old (1,2) weight 2.
  EXPECT_DOUBLE_EQ(sub.degree(0), 2.0);
}

TEST(Laplacian, RowSumsZero) {
  Graph g(4, {{0, 1, 1.5}, {1, 2, 2.5}, {2, 3, 0.5}, {0, 3, 1.0}});
  const auto q = build_laplacian(g);
  for (std::size_t i = 0; i < 4; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 4; ++j) row += q.at(i, j);
    EXPECT_NEAR(row, 0.0, 1e-15);
  }
  EXPECT_DOUBLE_EQ(q.at(0, 0), g.degree(0));
  EXPECT_DOUBLE_EQ(q.at(0, 1), -1.5);
}

TEST(Laplacian, TraceEqualsTwiceTotalWeight) {
  Graph g(4, {{0, 1, 1.5}, {1, 2, 2.5}, {2, 3, 0.5}});
  const auto q = build_laplacian(g);
  EXPECT_DOUBLE_EQ(q.trace(), 2.0 * g.total_edge_weight());
}

TEST(Adjacency, MatchesEdges) {
  Graph g(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  const auto a = build_adjacency(g);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

}  // namespace
}  // namespace specpart::graph
