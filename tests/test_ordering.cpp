// Tests for linear orderings and prefix-split machinery.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generator.h"
#include "part/objectives.h"
#include "part/ordering.h"
#include "util/rng.h"

namespace specpart::part {
namespace {

TEST(Ordering, PermutationCheck) {
  EXPECT_TRUE(is_permutation({2, 0, 1}, 3));
  EXPECT_FALSE(is_permutation({0, 0, 1}, 3));
  EXPECT_FALSE(is_permutation({0, 1}, 3));
  EXPECT_FALSE(is_permutation({0, 1, 3}, 3));
}

TEST(Ordering, PositionsInverse) {
  const Ordering o{3, 1, 0, 2};
  const auto pos = positions_of(o);
  for (std::uint32_t p = 0; p < o.size(); ++p) EXPECT_EQ(pos[o[p]], p);
}

TEST(PrefixCuts, MatchesDirectRecomputation) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = 60;
  cfg.num_nets = 80;
  cfg.seed = 21;
  const graph::Hypergraph h = graph::generate_netlist(cfg);
  Rng rng(5);
  Ordering o(h.num_nodes());
  std::iota(o.begin(), o.end(), 0u);
  rng.shuffle(o);

  const auto cuts = prefix_cuts(h, o);
  ASSERT_EQ(cuts.size(), h.num_nodes() + 1);
  EXPECT_DOUBLE_EQ(cuts[0], 0.0);
  EXPECT_DOUBLE_EQ(cuts[h.num_nodes()], 0.0);
  for (std::size_t i = 1; i < h.num_nodes(); i += 7) {
    const Partition p = split_to_partition(o, i);
    EXPECT_DOUBLE_EQ(cuts[i], cut_nets(h, p)) << "prefix " << i;
  }
}

TEST(BestRatioSplit, BruteForceAgreement) {
  graph::Hypergraph h(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5},
                          {1, 4}});
  Ordering o{0, 1, 2, 3, 4, 5};
  const SplitResult best = best_ratio_cut_split(h, o);
  ASSERT_TRUE(best.feasible);
  double manual_best = 1e300;
  for (std::size_t i = 1; i < 6; ++i) {
    const double c = cut_nets(h, split_to_partition(o, i));
    manual_best = std::min(manual_best, c / (double(i) * double(6 - i)));
  }
  EXPECT_DOUBLE_EQ(best.objective, manual_best);
}

TEST(BestMinCutSplit, RespectsBalance) {
  graph::Hypergraph h(10, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
                           {6, 7}, {7, 8}, {8, 9}});
  Ordering o(10);
  std::iota(o.begin(), o.end(), 0u);
  const SplitResult s = best_min_cut_split(h, o, 0.45);
  ASSERT_TRUE(s.feasible);
  EXPECT_GE(s.split, 5u);  // ceil(0.45*10) = 5
  EXPECT_LE(s.split, 5u);  // only i = 5 is feasible
  EXPECT_DOUBLE_EQ(s.cut, 1.0);  // the path is split in the middle
}

TEST(BestMinCutSplit, InfeasibleWhenTooStrict) {
  graph::Hypergraph h(3, {{0, 1}, {1, 2}});
  Ordering o{0, 1, 2};
  const SplitResult s = best_min_cut_split(h, o, 0.6);
  EXPECT_FALSE(s.feasible);
}

TEST(BestSplit, PathGraphOptimal) {
  // Ordering along a path: best ratio-cut split of P_8 is the middle.
  graph::Hypergraph h(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
                          {6, 7}});
  Ordering o(8);
  std::iota(o.begin(), o.end(), 0u);
  const SplitResult s = best_ratio_cut_split(h, o);
  EXPECT_EQ(s.split, 4u);
  EXPECT_DOUBLE_EQ(s.cut, 1.0);
}

TEST(SplitToPartition, PrefixIsClusterZero) {
  const Ordering o{2, 0, 1};
  const Partition p = split_to_partition(o, 1);
  EXPECT_EQ(p.cluster_of(2), 0u);
  EXPECT_EQ(p.cluster_of(0), 1u);
  EXPECT_EQ(p.cluster_of(1), 1u);
}

TEST(PrefixCuts, WeightedNets) {
  graph::Hypergraph h(3, {{0, 1}, {1, 2}}, {2.0, 3.0});
  const Ordering o{0, 1, 2};
  const auto cuts = prefix_cuts(h, o);
  EXPECT_DOUBLE_EQ(cuts[1], 2.0);
  EXPECT_DOUBLE_EQ(cuts[2], 3.0);
}

TEST(PrefixCuts, MultiPinNetOpenUntilComplete) {
  graph::Hypergraph h(4, {{0, 1, 2, 3}});
  const Ordering o{0, 1, 2, 3};
  const auto cuts = prefix_cuts(h, o);
  EXPECT_DOUBLE_EQ(cuts[1], 1.0);
  EXPECT_DOUBLE_EQ(cuts[2], 1.0);
  EXPECT_DOUBLE_EQ(cuts[3], 1.0);
  EXPECT_DOUBLE_EQ(cuts[4], 0.0);
}

}  // namespace
}  // namespace specpart::part
