// Tests for the symmetric CSR sparse matrix.
#include <gtest/gtest.h>

#include "linalg/sparse.h"
#include "util/rng.h"

namespace specpart::linalg {
namespace {

TEST(SymCsr, MirrorsOffDiagonals) {
  SymCsrMatrix m(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
  EXPECT_EQ(m.nnz(), 4u);
}

TEST(SymCsr, DuplicatesSummed) {
  SymCsrMatrix m(2, {{0, 1, 1.0}, {1, 0, 2.0}, {0, 0, 5.0}, {0, 0, 1.0}});
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);  // 1.0 + mirrored 2.0
  EXPECT_DOUBLE_EQ(m.at(0, 0), 6.0);
}

TEST(SymCsr, TraceAndGershgorin) {
  // Laplacian of a triangle: diag 2, off -1; lambda_max = 3; bound = 4.
  SymCsrMatrix m(3, {{0, 0, 2.0}, {1, 1, 2.0}, {2, 2, 2.0},
                     {0, 1, -1.0}, {1, 2, -1.0}, {0, 2, -1.0}});
  EXPECT_DOUBLE_EQ(m.trace(), 6.0);
  EXPECT_DOUBLE_EQ(m.gershgorin_upper(), 4.0);
}

TEST(SymCsr, MatvecMatchesDense) {
  Rng rng(99);
  const std::size_t n = 20;
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, rng.next_normal()});
    for (int rep = 0; rep < 3; ++rep) {
      const std::size_t j = rng.next_below(n);
      if (j != i)
        triplets.push_back({std::min(i, j), std::max(i, j), rng.next_normal()});
    }
  }
  SymCsrMatrix sparse(n, triplets);
  const DenseMatrix dense = sparse.to_dense();
  Vec x(n);
  for (double& v : x) v = rng.next_normal();
  const Vec ys = sparse.matvec(x);
  const Vec yd = dense.matvec(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SymCsr, DenseRoundTripSymmetric) {
  SymCsrMatrix m(4, {{0, 3, 1.5}, {1, 2, -2.5}, {2, 2, 4.0}});
  const DenseMatrix d = m.to_dense();
  EXPECT_LT(d.max_abs_diff(d.transposed()), 1e-15);
}

TEST(SymCsr, EmptyMatrix) {
  SymCsrMatrix m(5, {});
  EXPECT_EQ(m.size(), 5u);
  EXPECT_EQ(m.nnz(), 0u);
  const Vec y = m.matvec(Vec(5, 1.0));
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SymCsr, RowIteration) {
  SymCsrMatrix m(3, {{0, 1, 1.0}, {0, 2, 2.0}});
  double row0 = 0.0;
  for (std::size_t k = m.row_begin(0); k < m.row_end(0); ++k)
    row0 += m.value(k);
  EXPECT_DOUBLE_EQ(row0, 3.0);
  EXPECT_EQ(m.row_end(1) - m.row_begin(1), 1u);
}

}  // namespace
}  // namespace specpart::linalg
