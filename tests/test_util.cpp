// Tests for src/util: RNG determinism and statistics, string helpers, CLI
// parsing, error handling.
#include <gtest/gtest.h>

#include <set>

#include "util/cli.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stringutil.h"

namespace specpart {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(19);
  std::vector<double> w{0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 200; ++i) {
    const std::size_t pick = rng.next_weighted(w);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(Rng, WeightedProportions) {
  Rng rng(23);
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.next_weighted(w) == 1) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(StringUtil, SplitWs) {
  const auto t = split_ws("  a  bb\tccc \n d ");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[3], "d");
}

TEST(StringUtil, SplitWsEmpty) { EXPECT_TRUE(split_ws("   ").empty()); }

TEST(StringUtil, SplitCharKeepsEmptyFields) {
  const auto t = split_char("a,,b,", ',');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[1], "");
  EXPECT_EQ(t[3], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(StringUtil, ParseSizeValid) {
  EXPECT_EQ(parse_size("042", "t"), 42u);
  EXPECT_EQ(parse_size(" 7 ", "t"), 7u);
}

TEST(StringUtil, ParseSizeRejectsJunk) {
  EXPECT_THROW(parse_size("12x", "t"), Error);
  EXPECT_THROW(parse_size("", "t"), Error);
  EXPECT_THROW(parse_size("-3", "t"), Error);
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5", "t"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3", "t"), -1000.0);
  EXPECT_THROW(parse_double("abc", "t"), Error);
  EXPECT_THROW(parse_double("1.2.3", "t"), Error);
}

TEST(StringUtil, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(strprintf("%.2f", 1.2345), "1.23");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  Cli cli("prog", "test");
  cli.add_flag("scale", "1.0", "scale factor");
  cli.add_flag("verbose", "false", "chatty");
  const char* argv[] = {"prog", "--scale", "0.5", "pos1", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.5);
  EXPECT_TRUE(cli.get_bool("verbose"));
  ASSERT_EQ(cli.positionals().size(), 1u);
  EXPECT_EQ(cli.positionals()[0], "pos1");
}

TEST(Cli, EqualsSyntax) {
  Cli cli("prog", "test");
  cli.add_flag("k", "2", "clusters");
  const char* argv[] = {"prog", "--k=8"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("k"), 8);
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, MissingValueThrows) {
  Cli cli("prog", "test");
  cli.add_flag("k", "2", "clusters");
  const char* argv[] = {"prog", "--k"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, DefaultsSurviveParse) {
  Cli cli("prog", "test");
  cli.add_flag("k", "2", "clusters");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("k"), 2);
}

TEST(Error, CheckInputThrows) {
  EXPECT_THROW([] { SP_CHECK_INPUT(false, "boom"); }(), Error);
  EXPECT_NO_THROW([] { SP_CHECK_INPUT(true, "fine"); }());
}

TEST(Error, MessagePreserved) {
  try {
    SP_CHECK_INPUT(false, "specific message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

}  // namespace
}  // namespace specpart
