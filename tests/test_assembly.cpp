// Tests for the shared sparse data plane (linalg/csr.h, model/assembly.h):
// the counting-sort assembler against a stable-sort triplet reference,
// property tests on random hypergraphs with degenerate nets, bit-identity
// of assembly and matvec across thread counts, the O(nnz) Graph <->
// Laplacian conversions, and the model_too_large admission guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "graph/laplacian.h"
#include "linalg/csr.h"
#include "linalg/sparse.h"
#include "model/assembly.h"
#include "model/clique_models.h"
#include "util/error.h"
#include "util/status.h"

namespace specpart {
namespace {

using graph::Hypergraph;
using graph::NodeId;
using linalg::CsrAssembler;
using linalg::CsrStorage;
using linalg::SymCsrMatrix;
using model::ModelBuildOptions;
using model::NetModel;

/// Reference Laplacian via the seed triplet path: expand nets to an edge
/// list, stable-sort + merge (summing parallel contributions in input
/// order, the data plane's merge contract), then splice diagonals from the
/// same ascending-order degree sums. Exact by construction.
CsrStorage reference_clique_laplacian(const Hypergraph& h, NetModel m,
                                      std::size_t max_net_size = 0) {
  struct Entry {
    std::uint32_t row;
    std::uint32_t col;
    double value;
  };
  std::vector<Entry> entries;
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    if (pins.size() < 2) continue;
    if (max_net_size > 0 && pins.size() > max_net_size) continue;
    const double cost =
        h.net_weight(e) * model::clique_edge_cost(m, pins.size());
    for (std::size_t i = 0; i < pins.size(); ++i)
      for (std::size_t j = i + 1; j < pins.size(); ++j) {
        entries.push_back({pins[i], pins[j], cost});
        entries.push_back({pins[j], pins[i], cost});
      }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                   });
  const std::size_t n = h.num_nodes();
  // Merge runs per row, accumulate the degree in ascending column order,
  // and place the diagonal at its sorted slot.
  CsrStorage q;
  q.offsets.assign(n + 1, 0);
  std::size_t i = 0;
  for (std::size_t row = 0; row < n; ++row) {
    std::vector<std::uint32_t> cols;
    std::vector<double> vals;
    double degree = 0.0;
    while (i < entries.size() && entries[i].row == row) {
      const std::uint32_t c = entries[i].col;
      double sum = 0.0;
      while (i < entries.size() && entries[i].row == row &&
             entries[i].col == c) {
        sum += entries[i].value;
        ++i;
      }
      degree += sum;
      cols.push_back(c);
      vals.push_back(-sum);
    }
    const auto pos = std::lower_bound(cols.begin(), cols.end(),
                                      static_cast<std::uint32_t>(row));
    const std::size_t slot = static_cast<std::size_t>(pos - cols.begin());
    cols.insert(cols.begin() + static_cast<std::ptrdiff_t>(slot),
                static_cast<std::uint32_t>(row));
    vals.insert(vals.begin() + static_cast<std::ptrdiff_t>(slot), degree);
    q.offsets[row + 1] = q.offsets[row] + cols.size();
    q.cols.insert(q.cols.end(), cols.begin(), cols.end());
    q.values.insert(q.values.end(), vals.begin(), vals.end());
  }
  return q;
}

/// Random hypergraph with the degenerate shapes the data plane must
/// handle: empty nets, 1-pin nets, duplicate pins (merged by the
/// Hypergraph ctor), and repeated pin sets (parallel clique edges).
Hypergraph random_hypergraph(std::uint64_t seed, std::size_t num_nodes,
                             std::size_t num_nets) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> net_size(0, 9);
  std::uniform_int_distribution<NodeId> pin(
      0, static_cast<NodeId>(num_nodes - 1));
  std::uniform_real_distribution<double> weight(0.25, 4.0);
  std::vector<std::vector<NodeId>> nets;
  std::vector<double> weights;
  for (std::size_t e = 0; e < num_nets; ++e) {
    std::vector<NodeId> pins(net_size(rng));
    for (NodeId& p : pins) p = pin(rng);  // duplicates happen on purpose
    if (!nets.empty() && rng() % 4 == 0) {
      // Repeat an earlier net verbatim: parallel edges in the expansion.
      nets.push_back(nets[rng() % nets.size()]);
    } else {
      nets.push_back(std::move(pins));
    }
    weights.push_back(weight(rng));
  }
  return Hypergraph(num_nodes, std::move(nets), std::move(weights));
}

void expect_same_storage(const CsrStorage& a, const CsrStorage& b) {
  ASSERT_EQ(a.offsets, b.offsets);
  ASSERT_EQ(a.cols, b.cols);
  // Bit-level comparison: == on doubles would also pass for -0.0 vs 0.0.
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t k = 0; k < a.values.size(); ++k)
    EXPECT_EQ(0, std::memcmp(&a.values[k], &b.values[k], sizeof(double)))
        << "value mismatch at slot " << k;
}

ParallelConfig threads_with_small_grain(std::size_t n) {
  ParallelConfig par = ParallelConfig::with_threads(n);
  par.grain = 16;  // force multiple row blocks even on small inputs
  return par;
}

TEST(CsrAssembler, MergesDuplicatesInInsertionOrderWithSortedRows) {
  CsrAssembler ws;
  ws.begin(4);
  ws.add_entry(2, 1, 1.0);
  ws.add_entry(0, 3, 0.5);
  ws.add_entry(2, 1, 2.0);  // duplicate: summed after the first
  ws.add_entry(2, 0, 4.0);
  ws.add_entry(0, 3, 0.25);
  CsrStorage out;
  ws.finish(out);
  ASSERT_EQ(out.offsets, (std::vector<std::size_t>{0, 1, 1, 3, 3}));
  ASSERT_EQ(out.cols, (std::vector<std::uint32_t>{3, 0, 1}));
  EXPECT_EQ(out.values[0], 0.5 + 0.25);
  EXPECT_EQ(out.values[1], 4.0);
  EXPECT_EQ(out.values[2], 1.0 + 2.0);
  // Row 1 and row 3 are empty; row 2's columns come out sorted.
}

TEST(CsrAssembler, WorkspaceReusableAcrossAssemblies) {
  CsrAssembler ws;
  for (std::size_t round = 0; round < 3; ++round) {
    ws.begin(3);
    ws.add_edge(0, 2, 1.5);
    ws.add_edge(1, 2, 2.5);
    CsrStorage out;
    ws.finish(out);
    ASSERT_EQ(out.nnz(), 4u);
    EXPECT_EQ(out.cols, (std::vector<std::uint32_t>{2, 2, 0, 1}));
  }
}

TEST(CsrAssembler, LaplacianEmitsZeroDiagonalForIsolatedRows) {
  CsrAssembler ws;
  ws.begin(3);
  ws.add_edge(0, 2, 2.0);  // node 1 is isolated
  CsrStorage q;
  std::vector<double> degrees;
  ws.finish_laplacian(q, &degrees);
  ASSERT_EQ(q.offsets, (std::vector<std::size_t>{0, 2, 3, 5}));
  EXPECT_EQ(q.cols, (std::vector<std::uint32_t>{0, 2, 1, 0, 2}));
  EXPECT_EQ(q.values, (std::vector<double>{2.0, -2.0, 0.0, -2.0, 2.0}));
  EXPECT_EQ(degrees, (std::vector<double>{2.0, 0.0, 2.0}));
}

TEST(Assembly, CliquePairCountIsExact) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Hypergraph h = random_hypergraph(seed, 40, 60);
    for (std::size_t max_net : {std::size_t{0}, std::size_t{4}}) {
      std::size_t expected = 0;
      for (graph::NetId e = 0; e < h.num_nets(); ++e) {
        const std::size_t p = h.net(e).size();
        if (p < 2 || (max_net > 0 && p > max_net)) continue;
        expected += p * (p - 1) / 2;
      }
      EXPECT_EQ(model::clique_pair_count(h, max_net), expected);
    }
  }
}

TEST(Assembly, FusedLaplacianMatchesSeedTripletPath) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Hypergraph h = random_hypergraph(seed, 60, 90);
    for (const NetModel m : {NetModel::kStandard,
                             NetModel::kPartitioningSpecific,
                             NetModel::kFrankle}) {
      const SymCsrMatrix fused = model::build_clique_laplacian(h, m);
      const CsrStorage reference = reference_clique_laplacian(h, m);
      expect_same_storage(fused.csr(), reference);
    }
  }
}

TEST(Assembly, FusedLaplacianHonorsMaxNetSize) {
  const Hypergraph h = random_hypergraph(11, 50, 80);
  ModelBuildOptions opts;
  opts.max_net_size = 4;
  const SymCsrMatrix fused = model::build_clique_laplacian(
      h, NetModel::kPartitioningSpecific, opts);
  const CsrStorage reference =
      reference_clique_laplacian(h, NetModel::kPartitioningSpecific, 4);
  expect_same_storage(fused.csr(), reference);
}

TEST(Assembly, AssemblyBitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    const Hypergraph h = random_hypergraph(seed, 120, 160);
    ModelBuildOptions serial;
    const SymCsrMatrix base = model::build_clique_laplacian(
        h, NetModel::kPartitioningSpecific, serial);
    for (const std::size_t threads : {2u, 8u}) {
      ModelBuildOptions opts;
      opts.parallel = threads_with_small_grain(threads);
      const SymCsrMatrix threaded = model::build_clique_laplacian(
          h, NetModel::kPartitioningSpecific, opts);
      expect_same_storage(base.csr(), threaded.csr());
    }
  }
}

TEST(Assembly, MatvecBitIdenticalAcrossThreadCounts) {
  const Hypergraph h = random_hypergraph(31, 150, 220);
  const SymCsrMatrix q =
      model::build_clique_laplacian(h, NetModel::kStandard);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  linalg::Vec x(q.size());
  for (double& v : x) v = u(rng);
  linalg::Vec y1, y2, y8;
  q.matvec(x, y1, threads_with_small_grain(1));
  q.matvec(x, y2, threads_with_small_grain(2));
  q.matvec(x, y8, threads_with_small_grain(8));
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&y1[i], &y2[i], sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&y1[i], &y8[i], sizeof(double)));
  }
}

TEST(Assembly, ExpandedGraphMatchesCliqueExpand) {
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    const Hypergraph h = random_hypergraph(seed, 70, 110);
    const graph::Graph a =
        model::clique_expand(h, NetModel::kPartitioningSpecific);
    const graph::Graph b = model::expand_clique_graph(
        h, NetModel::kPartitioningSpecific);
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (std::size_t i = 0; i < a.num_edges(); ++i) {
      EXPECT_EQ(a.edges()[i].u, b.edges()[i].u);
      EXPECT_EQ(a.edges()[i].v, b.edges()[i].v);
      EXPECT_EQ(a.edges()[i].weight, b.edges()[i].weight);
    }
  }
}

TEST(Assembly, GraphRoundTripsThroughLaplacian) {
  const Hypergraph h = random_hypergraph(51, 80, 120);
  const graph::Graph direct =
      model::expand_clique_graph(h, NetModel::kFrankle);
  const SymCsrMatrix q = model::build_clique_laplacian(h, NetModel::kFrankle);
  const graph::Graph derived = graph::adjacency_graph(q);
  expect_same_storage(direct.adjacency_csr(), derived.adjacency_csr());
  ASSERT_EQ(direct.num_edges(), derived.num_edges());
  EXPECT_EQ(direct.total_edge_weight(), derived.total_edge_weight());
  for (NodeId v = 0; v < direct.num_nodes(); ++v)
    EXPECT_EQ(0, std::memcmp(&direct.degrees()[v], &derived.degrees()[v],
                             sizeof(double)));
}

TEST(Assembly, BuildLaplacianOfGraphMatchesFusedBuild) {
  const Hypergraph h = random_hypergraph(61, 90, 130);
  const graph::Graph g =
      model::expand_clique_graph(h, NetModel::kPartitioningSpecific);
  const SymCsrMatrix from_graph = graph::build_laplacian(g);
  const SymCsrMatrix fused =
      model::build_clique_laplacian(h, NetModel::kPartitioningSpecific);
  expect_same_storage(from_graph.csr(), fused.csr());
}

TEST(Assembly, StoredDegreesMatchRowSums) {
  const Hypergraph h = random_hypergraph(71, 64, 100);
  const graph::Graph g = model::expand_clique_graph(h, NetModel::kStandard);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    double d = 0.0;
    for (std::size_t s = g.adjacency_begin(v); s < g.adjacency_end(v); ++s)
      d += g.neighbour(s).weight;
    EXPECT_EQ(0, std::memcmp(&d, &g.degrees()[v], sizeof(double)));
  }
}

TEST(Assembly, ModelTooLargeFailsFastWithDiagnostic) {
  const Hypergraph h = random_hypergraph(81, 50, 80);
  const std::size_t pairs = model::clique_pair_count(h);
  ASSERT_GT(pairs, 1u);
  ModelBuildOptions opts;
  opts.max_clique_pairs = pairs - 1;
  Diagnostics diag;
  try {
    model::build_clique_laplacian(h, NetModel::kStandard, opts, &diag);
    FAIL() << "expected model_too_large";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("model_too_large"),
              std::string::npos);
  }
  ASSERT_EQ(diag.events().size(), 1u);
  EXPECT_EQ(diag.events()[0].stage, "model");
  EXPECT_NE(diag.events()[0].message.find("model_too_large"),
            std::string::npos);
  // A budget at exactly the pair count admits the build.
  opts.max_clique_pairs = pairs;
  EXPECT_NO_THROW(model::build_clique_laplacian(h, NetModel::kStandard, opts));
}

TEST(Assembly, CliqueModelBuildsLazilyAndDerivesTheOther) {
  const Hypergraph h = random_hypergraph(91, 40, 60);
  {
    model::CliqueModel cm(h, NetModel::kPartitioningSpecific);
    EXPECT_FALSE(cm.laplacian_built());
    EXPECT_FALSE(cm.graph_built());
    const SymCsrMatrix& q = cm.laplacian();
    EXPECT_TRUE(cm.laplacian_built());
    EXPECT_FALSE(cm.graph_built());
    // Deriving the graph afterwards matches a direct expansion exactly.
    const graph::Graph& g = cm.graph();
    EXPECT_TRUE(cm.graph_built());
    const graph::Graph direct =
        model::expand_clique_graph(h, NetModel::kPartitioningSpecific);
    expect_same_storage(g.adjacency_csr(), direct.adjacency_csr());
    // And the Laplacian reference stays valid and correct.
    expect_same_storage(
        q.csr(),
        model::build_clique_laplacian(h, NetModel::kPartitioningSpecific)
            .csr());
  }
  {
    model::CliqueModel cm(h, NetModel::kPartitioningSpecific);
    const graph::Graph& g = cm.graph();  // graph first this time
    EXPECT_TRUE(cm.graph_built());
    EXPECT_FALSE(cm.laplacian_built());
    expect_same_storage(cm.laplacian().csr(),
                        graph::build_laplacian(g).csr());
  }
}

TEST(Assembly, InducedSubgraphMatchesSeedSemantics) {
  const Hypergraph h = random_hypergraph(101, 60, 90);
  const graph::Graph g = model::expand_clique_graph(h, NetModel::kStandard);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < g.num_nodes(); v += 2) nodes.push_back(v);
  const graph::Graph sub = g.induced_subgraph(nodes);
  ASSERT_EQ(sub.num_nodes(), nodes.size());
  // Every surviving edge keeps its weight; endpoints remap to positions.
  std::size_t expected_edges = 0;
  for (const graph::Edge& e : g.edges())
    if (e.u % 2 == 0 && e.v % 2 == 0) ++expected_edges;
  EXPECT_EQ(sub.num_edges(), expected_edges);
  for (const graph::Edge& e : sub.edges()) {
    const NodeId u = nodes[e.u];
    const NodeId v = nodes[e.v];
    bool found = false;
    for (std::size_t s = g.adjacency_begin(u); s < g.adjacency_end(u); ++s) {
      if (g.neighbour(s).node == v) {
        EXPECT_EQ(g.neighbour(s).weight, e.weight);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Assembly, TripletConstructorMatchesAssembler) {
  // The SymCsrMatrix triplet ctor now routes through the assembler; its
  // stable merge must sum duplicates in insertion order.
  std::vector<linalg::Triplet> t = {
      {0, 1, 0.1}, {1, 2, 0.7}, {0, 1, 0.2}, {2, 2, 5.0}, {0, 0, 1.0}};
  const SymCsrMatrix m(3, t);
  EXPECT_EQ(m.at(0, 1), 0.1 + 0.2);
  EXPECT_EQ(m.at(1, 0), 0.1 + 0.2);
  EXPECT_EQ(m.at(2, 2), 5.0);
  EXPECT_EQ(m.at(0, 0), 1.0);
  EXPECT_EQ(m.nnz(), 6u);
}

}  // namespace
}  // namespace specpart
