// Edge-case and failure-injection tests across modules: tiny inputs,
// degenerate structures, weighted nets in every pipeline stage, and
// pathological-but-legal configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "core/drivers.h"
#include "graph/generator.h"
#include "graph/netlist_io.h"
#include "linalg/tridiagonal.h"
#include "part/fm.h"
#include "part/objectives.h"
#include "part/ordering.h"
#include "spectral/dprp.h"
#include "spectral/embedding.h"
#include "spectral/sb.h"
#include "util/error.h"

namespace specpart {
namespace {

// --- Tiny instances -------------------------------------------------------

TEST(EdgeCases, TwoVertexNetlistBipartitions) {
  graph::Hypergraph h(2, {{0, 1}});
  core::MeloOptions m;
  m.num_eigenvectors = 2;
  const auto r = core::melo_bipartition(h, m, 0.45);
  EXPECT_EQ(r.partition.cluster_size(0), 1u);
  EXPECT_EQ(r.partition.cluster_size(1), 1u);
  EXPECT_DOUBLE_EQ(r.cut, 1.0);
}

TEST(EdgeCases, ThreeVertexPathAllAlgorithms) {
  graph::Hypergraph h(3, {{0, 1}, {1, 2}});
  spectral::SbOptions so;
  const auto sb = spectral::spectral_bipartition(h, so);
  EXPECT_EQ(sb.partition.num_nonempty(), 2u);
  core::MeloOptions m;
  m.num_eigenvectors = 3;
  m.solver.dense_threshold = 10;
  EXPECT_EQ(core::melo_bipartition(h, m).partition.num_nonempty(), 2u);
}

TEST(EdgeCases, StarNetlist) {
  // One hub vertex on every net: spectrally nasty (hub dominates).
  std::vector<std::vector<graph::NodeId>> nets;
  for (graph::NodeId i = 1; i < 12; ++i) nets.push_back({0, i});
  graph::Hypergraph h(12, std::move(nets));
  core::MeloOptions m;
  const auto r = core::melo_bipartition(h, m, 0.4);
  EXPECT_TRUE(part::is_permutation(r.ordering, 12));
  EXPECT_GE(r.partition.cluster_size(0), 4u);
}

TEST(EdgeCases, CompleteNetOverEverything) {
  // A single net containing all vertices: every bipartition cuts it.
  graph::Hypergraph h(8, {{0, 1, 2, 3, 4, 5, 6, 7}, {0, 1}, {6, 7}});
  core::MeloOptions m;
  const auto r = core::melo_bipartition(h, m, 0.45);
  EXPECT_DOUBLE_EQ(r.cut, 1.0);  // only the big net is cut
}

// --- Degenerate inputs through the full MELO driver -------------------------

TEST(EdgeCases, DisconnectedNetlistFullDriver) {
  // Two components end-to-end: eigensolve (multiple zero eigenvalues),
  // ordering, and the balanced split must all survive lambda_2 = 0.
  graph::Hypergraph h(8, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}});
  core::MeloOptions m;
  m.num_eigenvectors = 4;
  const auto r = core::melo_bipartition(h, m, 0.5);
  EXPECT_TRUE(part::is_permutation(r.ordering, 8));
  EXPECT_EQ(r.partition.cluster_size(0), 4u);
  EXPECT_EQ(r.partition.cluster_size(1), 4u);
  EXPECT_DOUBLE_EQ(r.cut, 0.0);  // components separate cleanly
}

TEST(EdgeCases, SingleVertexNetlistRejectedCleanly) {
  // One module cannot be bipartitioned: a recoverable Error, not a crash
  // or an SP_ASSERT abort.
  graph::Hypergraph h(1, {});
  core::MeloOptions m;
  EXPECT_THROW(core::melo_bipartition(h, m, 0.45), Error);
  EXPECT_THROW(core::melo_orderings(h, m), Error);
}

TEST(EdgeCases, AllIsolatedVerticesFullDriver) {
  // No nets at all: the Laplacian is the zero matrix (fully degenerate
  // spectrum). Any balanced split is optimal with cut 0.
  graph::Hypergraph h(6, {});
  core::MeloOptions m;
  m.num_eigenvectors = 3;
  const auto r = core::melo_bipartition(h, m, 0.5);
  EXPECT_TRUE(part::is_permutation(r.ordering, 6));
  EXPECT_EQ(r.partition.cluster_size(0), 3u);
  EXPECT_EQ(r.partition.cluster_size(1), 3u);
  EXPECT_DOUBLE_EQ(r.cut, 0.0);
}

TEST(EdgeCases, SingleNetSpanningAllVerticesFullDriver) {
  // The only net covers every vertex: every bipartition cuts it, and the
  // clique model is a complete graph (maximally clustered spectrum).
  graph::Hypergraph h(6, {{0, 1, 2, 3, 4, 5}});
  core::MeloOptions m;
  m.num_eigenvectors = 3;
  const auto r = core::melo_bipartition(h, m, 0.5);
  EXPECT_EQ(r.partition.cluster_size(0), 3u);
  EXPECT_EQ(r.partition.cluster_size(1), 3u);
  EXPECT_DOUBLE_EQ(r.cut, 1.0);
}

// --- Weighted nets through the whole stack ---------------------------------

TEST(EdgeCases, WeightedNetsFlowThroughMelo) {
  // Heavy net binds {0,1}; cutting it must be avoided.
  graph::Hypergraph h(6,
                      {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}},
                      {50.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  core::MeloOptions m;
  m.num_eigenvectors = 4;
  m.solver.dense_threshold = 10;
  const auto r = core::melo_bipartition(h, m, 1.0 / 3.0);
  EXPECT_EQ(r.partition.cluster_of(0), r.partition.cluster_of(1));
}

TEST(EdgeCases, WeightedNetsInDprp) {
  graph::Hypergraph h(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}},
                      {1.0, 1.0, 9.0, 1.0, 1.0});
  part::Ordering o(6);
  std::iota(o.begin(), o.end(), 0u);
  spectral::DprpOptions opts;
  opts.k = 2;
  const auto r = spectral::dprp_split(h, o, opts);
  // The DP must avoid cutting the heavy net {2,3}.
  EXPECT_NE(r.boundaries[1], 3u);
}

TEST(EdgeCases, WeightedVertexFmBalance) {
  // One elephant vertex (weight 4 of 8 total) among mice: bounds must bind
  // on weight, not count — the count-balanced 2/3 split would violate them.
  graph::Hypergraph h(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  part::FmOptions opts;
  opts.vertex_weights = {4.0, 1.0, 1.0, 1.0, 1.0};
  opts.balance = {0.30, 0.70};
  const auto r = part::fm_bipartition(h, opts);
  double w[2] = {0.0, 0.0};
  for (graph::NodeId v = 0; v < 5; ++v)
    w[r.partition.cluster_of(v)] += opts.vertex_weights[v];
  const double total = 8.0;
  EXPECT_GE(w[0], 0.30 * total - 1e-9);
  EXPECT_LE(w[0], 0.70 * total + 1e-9);
}

// --- Degenerate spectra ----------------------------------------------------

TEST(EdgeCases, DisconnectedNetlistStillOrders) {
  // Two components: lambda_2 = 0; the embedding separates components.
  graph::Hypergraph h(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  core::MeloOptions m;
  m.num_eigenvectors = 3;
  m.solver.dense_threshold = 10;
  const auto runs = core::melo_orderings(h, m);
  EXPECT_TRUE(part::is_permutation(runs[0].ordering, 6));
  // A min-cut balanced split must cut zero nets.
  const auto split = part::best_min_cut_split(h, runs[0].ordering, 0.5);
  ASSERT_TRUE(split.feasible);
  EXPECT_DOUBLE_EQ(split.cut, 0.0);
}

TEST(EdgeCases, CompleteGraphUniformSpectrum) {
  // K_n Laplacian: eigenvalues {0, n, ..., n} — maximal degeneracy.
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i < 10; ++i)
    for (graph::NodeId j = i + 1; j < 10; ++j) edges.push_back({i, j, 1.0});
  const graph::Graph g(10, edges);
  spectral::EmbeddingOptions opts;
  opts.count = 4;
  opts.solver.dense_threshold = 100;
  const auto basis = spectral::compute_eigenbasis(g, opts);
  EXPECT_NEAR(basis.values[0], 0.0, 1e-9);
  for (std::size_t j = 1; j < 4; ++j)
    EXPECT_NEAR(basis.values[j], 10.0, 1e-8);
}

TEST(EdgeCases, TridiagonalAllZeros) {
  linalg::Tridiagonal t{{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
  const auto values = linalg::tridiagonal_eigenvalues(std::move(t));
  for (double v : values) EXPECT_DOUBLE_EQ(v, 0.0);
}

// --- Generator extremes -----------------------------------------------------

TEST(EdgeCases, GeneratorAllGlobalNets) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = 60;
  cfg.num_nets = 80;
  cfg.p_subcluster = 0.0;
  cfg.p_cluster = 0.0;  // every net global
  cfg.seed = 3;
  const auto h = graph::generate_netlist(cfg);
  EXPECT_TRUE(h.connected());
  EXPECT_EQ(h.num_nodes(), 60u);
}

TEST(EdgeCases, GeneratorAllLocalNets) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = 60;
  cfg.num_nets = 90;
  cfg.p_subcluster = 1.0;
  cfg.p_cluster = 0.0;  // every net inside one subcluster
  cfg.seed = 4;
  const auto h = graph::generate_netlist(cfg);
  EXPECT_TRUE(h.connected());  // repair nets added
}

TEST(EdgeCases, GeneratorSingleCluster) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = 40;
  cfg.num_nets = 50;
  cfg.num_clusters = 1;
  cfg.subclusters_per_cluster = 1;
  cfg.seed = 5;
  const auto h = graph::generate_netlist(cfg);
  EXPECT_EQ(h.num_nodes(), 40u);
  const auto planted = graph::planted_clusters(cfg);
  for (auto c : planted) EXPECT_EQ(c, 0u);
}

// --- I/O edge cases ----------------------------------------------------------

TEST(EdgeCases, HgrSingleNet) {
  std::istringstream in("1 2\n1 2\n");
  const auto h = graph::read_hgr(in);
  EXPECT_EQ(h.num_nets(), 1u);
  EXPECT_TRUE(h.connected());
}

TEST(EdgeCases, HgrPinRepeatedInFile) {
  std::istringstream in("1 3\n1 1 2 3\n");
  const auto h = graph::read_hgr(in);
  EXPECT_EQ(h.net(0).size(), 3u);  // duplicate pin merged
}

// --- Split sweeps at the boundary -------------------------------------------

TEST(EdgeCases, MinFractionExactlyHalf) {
  graph::Hypergraph h(4, {{0, 1}, {1, 2}, {2, 3}});
  part::Ordering o{0, 1, 2, 3};
  const auto s = part::best_min_cut_split(h, o, 0.5);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.split, 2u);
}

TEST(EdgeCases, RatioSplitSingletonAllowed) {
  // Unconstrained ratio cut may pick a singleton side when it is best.
  graph::Hypergraph h(5, {{1, 2}, {2, 3}, {3, 4}, {1, 4}, {0, 1}});
  part::Ordering o{0, 1, 2, 3, 4};
  const auto s = part::best_ratio_cut_split(h, o);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.split, 1u);  // vertex 0 hangs by one net
  EXPECT_DOUBLE_EQ(s.cut, 1.0);
}

}  // namespace
}  // namespace specpart
