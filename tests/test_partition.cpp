// Tests for Partition and BalanceConstraint.
#include <gtest/gtest.h>

#include "part/partition.h"

namespace specpart::part {
namespace {

TEST(Partition, InitialAllInClusterZero) {
  Partition p(5, 3);
  EXPECT_EQ(p.k(), 3u);
  EXPECT_EQ(p.cluster_size(0), 5u);
  EXPECT_EQ(p.cluster_size(1), 0u);
  EXPECT_EQ(p.num_nonempty(), 1u);
}

TEST(Partition, AssignUpdatesSizes) {
  Partition p(4, 2);
  p.assign(0, 1);
  p.assign(3, 1);
  EXPECT_EQ(p.cluster_size(0), 2u);
  EXPECT_EQ(p.cluster_size(1), 2u);
  p.assign(0, 1);  // no-op move
  EXPECT_EQ(p.cluster_size(1), 2u);
}

TEST(Partition, FromAssignment) {
  Partition p({0, 1, 2, 1}, 3);
  EXPECT_EQ(p.cluster_size(1), 2u);
  EXPECT_EQ(p.cluster_of(2), 2u);
  EXPECT_EQ(p.num_nonempty(), 3u);
}

TEST(Partition, Members) {
  Partition p({1, 0, 1, 1}, 2);
  const auto m = p.members(1);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], 0u);
  EXPECT_EQ(m[1], 2u);
  EXPECT_EQ(m[2], 3u);
}

TEST(Balance, Bounds) {
  BalanceConstraint b{0.45, 0.55};
  EXPECT_EQ(b.lower(100), 45u);
  EXPECT_EQ(b.upper(100), 55u);
  EXPECT_EQ(b.lower(10), 5u);   // ceil(4.5)
  EXPECT_EQ(b.upper(10), 5u);   // floor(5.5)
}

TEST(Balance, Satisfied) {
  BalanceConstraint b{0.4, 0.6};
  EXPECT_TRUE(b.satisfied(Partition({0, 0, 1, 1}, 2)));
  EXPECT_FALSE(b.satisfied(Partition({0, 0, 0, 1}, 2)));
}

TEST(Balance, UnconstrainedAlwaysSatisfied) {
  BalanceConstraint b;  // [0, 1]
  EXPECT_TRUE(b.satisfied(Partition({0, 0, 0, 0}, 2)));
}

TEST(Balance, ExactHalves) {
  BalanceConstraint b{0.5, 0.5};
  EXPECT_TRUE(b.satisfied(Partition({0, 1, 0, 1}, 2)));
  EXPECT_FALSE(b.satisfied(Partition({0, 0, 0, 1}, 2)));
}

}  // namespace
}  // namespace specpart::part
