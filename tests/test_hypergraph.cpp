// Tests for the Hypergraph netlist representation.
#include <gtest/gtest.h>

#include "graph/hypergraph.h"

namespace specpart::graph {
namespace {

Hypergraph small() {
  // 5 vertices, nets: {0,1,2}, {2,3}, {3,4}, {0,4}
  return Hypergraph(5, {{0, 1, 2}, {2, 3}, {3, 4}, {0, 4}});
}

TEST(Hypergraph, BasicCounts) {
  const Hypergraph h = small();
  EXPECT_EQ(h.num_nodes(), 5u);
  EXPECT_EQ(h.num_nets(), 4u);
  EXPECT_EQ(h.num_pins(), 9u);
  EXPECT_EQ(h.max_net_size(), 3u);
}

TEST(Hypergraph, DuplicatePinsMerged) {
  Hypergraph h(3, {{0, 1, 1, 0, 2}});
  EXPECT_EQ(h.net(0).size(), 3u);
  EXPECT_EQ(h.num_pins(), 3u);
}

TEST(Hypergraph, NetsOfVertex) {
  const Hypergraph h = small();
  const auto& nets0 = h.nets_of(0);
  ASSERT_EQ(nets0.size(), 2u);
  EXPECT_EQ(h.node_degree(3), 2u);
  EXPECT_EQ(h.node_degree(2), 2u);
}

TEST(Hypergraph, DefaultWeightsAreOne) {
  const Hypergraph h = small();
  for (NetId e = 0; e < h.num_nets(); ++e)
    EXPECT_DOUBLE_EQ(h.net_weight(e), 1.0);
}

TEST(Hypergraph, ExplicitWeights) {
  Hypergraph h(3, {{0, 1}, {1, 2}}, {2.5, 0.5});
  EXPECT_DOUBLE_EQ(h.net_weight(0), 2.5);
  EXPECT_DOUBLE_EQ(h.net_weight(1), 0.5);
}

TEST(Hypergraph, Connectivity) {
  EXPECT_TRUE(small().connected());
  Hypergraph split(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(split.connected());
  Hypergraph isolated(3, {{0, 1}});  // vertex 2 untouched
  EXPECT_FALSE(isolated.connected());
  EXPECT_TRUE(Hypergraph(1, {}).connected());
}

TEST(Hypergraph, Induced) {
  const Hypergraph h = small();
  const Hypergraph sub = h.induced({0, 1, 2});
  EXPECT_EQ(sub.num_nodes(), 3u);
  // Only net {0,1,2} survives in full; {2,3} loses pin 3 -> 1 pin dropped.
  EXPECT_EQ(sub.num_nets(), 1u);
  EXPECT_EQ(sub.net(0).size(), 3u);
}

TEST(Hypergraph, InducedRemapsIds) {
  const Hypergraph h = small();
  const Hypergraph sub = h.induced({3, 4});
  ASSERT_EQ(sub.num_nets(), 1u);  // old net {3,4} -> new {0,1}
  EXPECT_EQ(sub.net(0)[0], 0u);
  EXPECT_EQ(sub.net(0)[1], 1u);
}

TEST(Hypergraph, InducedStrictDropsPartialNets) {
  const Hypergraph h = small();
  // Nodes {0,1,2}: net {0,1,2} is fully inside; {0,4} and {2,3} are not.
  const Hypergraph strict = h.induced_strict({0, 1, 2});
  EXPECT_EQ(strict.num_nets(), 1u);
  EXPECT_EQ(strict.net(0).size(), 3u);
  // The loose variant keeps the 2-pin fragment of nothing extra here, but
  // differs on {2,3,4}: {2,3} and {3,4} are complete, {0,1,2} is partial.
  const Hypergraph loose = h.induced({2, 3, 4});
  const Hypergraph strict2 = h.induced_strict({2, 3, 4});
  EXPECT_EQ(loose.num_nets(), 2u);
  EXPECT_EQ(strict2.num_nets(), 2u);
  const Hypergraph strict3 = h.induced_strict({0, 1, 4});
  EXPECT_EQ(strict3.num_nets(), 1u);  // only {0,4} survives strictly
}

TEST(Hypergraph, NodeNames) {
  Hypergraph h(2, {{0, 1}});
  h.set_node_names({"a0", "p1"});
  EXPECT_EQ(h.node_names()[1], "p1");
}

TEST(Hypergraph, ToHypergraphFromGraph) {
  Graph g(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  const Hypergraph h = to_hypergraph(g);
  EXPECT_EQ(h.num_nodes(), 3u);
  EXPECT_EQ(h.num_nets(), 2u);
  EXPECT_EQ(h.net(0).size(), 2u);
  EXPECT_DOUBLE_EQ(h.net_weight(0) + h.net_weight(1), 5.0);
}

TEST(Hypergraph, SinglePinNetKept) {
  Hypergraph h(2, {{0}, {0, 1}});
  EXPECT_EQ(h.num_nets(), 2u);
  EXPECT_EQ(h.net(0).size(), 1u);
}

}  // namespace
}  // namespace specpart::graph
