// Tests for the Fiduccia-Mattheyses bipartitioner.
#include <gtest/gtest.h>

#include "graph/generator.h"
#include "part/fm.h"
#include "part/objectives.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart::part {
namespace {

/// Two planted blocks of `half` vertices joined by `bridges` 2-pin nets.
graph::Hypergraph planted_bipartition(std::size_t half, std::size_t bridges,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<graph::NodeId>> nets;
  auto add_intra = [&](graph::NodeId base) {
    for (std::size_t e = 0; e < half * 3; ++e) {
      const auto u = base + static_cast<graph::NodeId>(rng.next_below(half));
      const auto v = base + static_cast<graph::NodeId>(rng.next_below(half));
      if (u != v) nets.push_back({u, v});
    }
    // Ring for guaranteed connectivity.
    for (graph::NodeId i = 0; i < half; ++i)
      nets.push_back({base + i, base + (i + 1) % static_cast<graph::NodeId>(half)});
  };
  add_intra(0);
  add_intra(static_cast<graph::NodeId>(half));
  for (std::size_t b = 0; b < bridges; ++b) {
    nets.push_back({static_cast<graph::NodeId>(rng.next_below(half)),
                    static_cast<graph::NodeId>(half + rng.next_below(half))});
  }
  return graph::Hypergraph(2 * half, std::move(nets));
}

TEST(Fm, RefineNeverWorsensCut) {
  const graph::Hypergraph h = planted_bipartition(30, 6, 1);
  Rng rng(2);
  std::vector<std::uint32_t> assignment(h.num_nodes());
  for (auto& a : assignment) a = rng.next_bool() ? 1 : 0;
  const Partition init(assignment, 2);
  const double before = cut_nets(h, init);
  FmOptions opts;
  opts.balance = {0.3, 0.7};
  const FmResult r = fm_refine(h, init, opts);
  EXPECT_LE(r.cut, before);
  EXPECT_DOUBLE_EQ(r.cut, cut_nets(h, r.partition));
}

TEST(Fm, FindsPlantedBipartition) {
  const graph::Hypergraph h = planted_bipartition(40, 4, 3);
  FmOptions opts;
  opts.num_starts = 8;
  const FmResult r = fm_bipartition(h, opts);
  // The planted cut is 4; FM should find it (or get very close).
  EXPECT_LE(r.cut, 6.0);
}

TEST(Fm, RespectsBalance) {
  const graph::Hypergraph h = planted_bipartition(25, 10, 5);
  FmOptions opts;
  opts.balance = {0.45, 0.55};
  const FmResult r = fm_bipartition(h, opts);
  EXPECT_TRUE(opts.balance.satisfied(r.partition));
}

TEST(Fm, DeterministicForFixedSeed) {
  const graph::Hypergraph h = planted_bipartition(20, 5, 7);
  FmOptions opts;
  opts.seed = 99;
  const FmResult a = fm_bipartition(h, opts);
  const FmResult b = fm_bipartition(h, opts);
  EXPECT_EQ(a.partition.assignment(), b.partition.assignment());
  EXPECT_DOUBLE_EQ(a.cut, b.cut);
}

TEST(Fm, RefineRequiresBipartition) {
  const graph::Hypergraph h = planted_bipartition(5, 1, 1);
  Partition p(h.num_nodes(), 3);
  EXPECT_DEATH(fm_refine(h, p, FmOptions{}), "bipartition");
}

TEST(Fm, WeightedNetsPreferred) {
  // Heavy net {0,1} vs light nets; FM must keep 0 and 1 together.
  graph::Hypergraph h(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, {10, 1, 1, 1});
  FmOptions opts;
  opts.balance = {0.5, 0.5};
  opts.num_starts = 4;
  const FmResult r = fm_bipartition(h, opts);
  EXPECT_EQ(r.partition.cluster_of(0), r.partition.cluster_of(1));
  EXPECT_DOUBLE_EQ(r.cut, 2.0);
}

TEST(Fm, HandlesMultiPinNets) {
  graph::Hypergraph h(6, {{0, 1, 2}, {3, 4, 5}, {2, 3}});
  FmOptions opts;
  // Note: an exact-halves constraint would freeze FM (any single move
  // violates it); a window leaves room to move.
  opts.balance = {1.0 / 3.0, 2.0 / 3.0};
  opts.num_starts = 4;
  const FmResult r = fm_bipartition(h, opts);
  EXPECT_DOUBLE_EQ(r.cut, 1.0);  // only the bridging net {2,3} is cut
}

TEST(Fm, TinyInstanceRejected) {
  graph::Hypergraph h(1, {});
  EXPECT_THROW(fm_bipartition(h, FmOptions{}), Error);
}

TEST(Fm, ImprovesOnGeneratedCircuit) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = 200;
  cfg.num_nets = 220;
  cfg.num_clusters = 2;
  cfg.subclusters_per_cluster = 2;
  cfg.seed = 11;
  const graph::Hypergraph h = graph::generate_netlist(cfg);
  Rng rng(3);
  std::vector<std::uint32_t> assignment(h.num_nodes());
  for (std::size_t i = 0; i < assignment.size(); ++i)
    assignment[i] = i % 2;  // interleaved start: terrible cut
  const Partition init(assignment, 2);
  const double before = cut_nets(h, init);
  const FmResult r = fm_refine(h, init, FmOptions{});
  EXPECT_LT(r.cut, 0.7 * before);
}

}  // namespace
}  // namespace specpart::part
