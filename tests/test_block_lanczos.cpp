// Tests for the block Lanczos driver and the EigenSolver backend API.
//
// Validated against the exact dense solver on random graph Laplacians
// (eigenvalues and principal angles of the computed subspace), on
// degenerate inputs (d >= n, disconnected graphs, netlists with 0/1-pin
// nets via the clique-model path), and on the two backend contracts: the
// scalar backend is byte-identical to a direct lanczos_smallest call, and
// the block backend is bit-identical for every thread count (this binary
// also runs as test_block_lanczos_mt under SPECPART_THREADS=8, making the
// "auto" lane below an 8-thread lane).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "graph/laplacian.h"
#include "linalg/band_eigen.h"
#include "linalg/block_lanczos.h"
#include "linalg/eigensolver.h"
#include "linalg/lanczos.h"
#include "linalg/symmetric_eigen.h"
#include "model/assembly.h"
#include "spectral/embedding.h"
#include "util/rng.h"

namespace specpart::linalg {
namespace {

/// Random connected graph Laplacian (spanning tree + extra random edges).
SymCsrMatrix random_laplacian(std::size_t n, std::size_t extra_edges,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  for (std::size_t v = 1; v < n; ++v)
    edges.push_back({static_cast<graph::NodeId>(rng.next_below(v)),
                     static_cast<graph::NodeId>(v),
                     0.5 + rng.next_double()});
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.next_below(n));
    const auto v = static_cast<graph::NodeId>(rng.next_below(n));
    if (u != v) edges.push_back({u, v, 0.5 + rng.next_double()});
  }
  return graph::build_laplacian(graph::Graph(n, edges));
}

TEST(BlockLanczos, MatchesDenseOnSmallLaplacian) {
  const SymCsrMatrix q = random_laplacian(40, 80, 1);
  BlockLanczosOptions opts;
  opts.num_eigenpairs = 5;
  const LanczosResult r = block_lanczos_smallest(q, opts);
  ASSERT_TRUE(r.converged);
  const EigenDecomposition exact = solve_symmetric_eigen(q.to_dense());
  for (std::size_t j = 0; j < 5; ++j)
    EXPECT_NEAR(r.values[j], exact.values[j], 1e-7) << "pair " << j;
}

TEST(BlockLanczos, ResidualsSmall) {
  const SymCsrMatrix q = random_laplacian(80, 160, 3);
  BlockLanczosOptions opts;
  opts.num_eigenpairs = 6;
  const LanczosResult r = block_lanczos_smallest(q, opts);
  ASSERT_TRUE(r.converged);
  for (std::size_t j = 0; j < 6; ++j) {
    const Vec v = r.vectors.col(j);
    Vec qv = q.matvec(v);
    axpy(-r.values[j], v, qv);
    EXPECT_LT(norm(qv), 1e-6 * q.gershgorin_upper()) << "pair " << j;
  }
}

TEST(BlockLanczos, VectorsOrthonormal) {
  const SymCsrMatrix q = random_laplacian(70, 140, 4);
  BlockLanczosOptions opts;
  opts.num_eigenpairs = 8;
  const LanczosResult r = block_lanczos_smallest(q, opts);
  for (std::size_t a = 0; a < 8; ++a)
    for (std::size_t b = a; b < 8; ++b)
      EXPECT_NEAR(dot(r.vectors.col(a), r.vectors.col(b)),
                  a == b ? 1.0 : 0.0, 1e-7)
          << a << "," << b;
}

TEST(BlockLanczos, PrincipalAnglesVsDenseSubspace) {
  // The computed d-dimensional subspace must align with the dense solver's:
  // with C = U_dense^T U_block, all principal-angle cosines (the singular
  // values of C) are near 1 iff C^T C is near the identity.
  const SymCsrMatrix q = random_laplacian(60, 150, 9);
  const std::size_t d = 5;
  BlockLanczosOptions opts;
  opts.num_eigenpairs = d;
  const LanczosResult r = block_lanczos_smallest(q, opts);
  ASSERT_TRUE(r.converged);
  const EigenDecomposition exact = solve_symmetric_eigen(q.to_dense());
  DenseMatrix c(d, d);
  for (std::size_t a = 0; a < d; ++a)
    for (std::size_t b = 0; b < d; ++b)
      c.at(a, b) = dot(exact.vectors.col(a), r.vectors.col(b));
  const DenseMatrix gram = c.transposed().multiply(c);
  EXPECT_LT(gram.max_abs_diff(DenseMatrix::identity(d)), 1e-5);
}

TEST(BlockLanczos, WantMoreThanDimension) {
  const SymCsrMatrix q = random_laplacian(6, 5, 5);
  BlockLanczosOptions opts;
  opts.num_eigenpairs = 10;  // clamped to n = 6; basis spans R^6 -> exact
  const LanczosResult r = block_lanczos_smallest(q, opts);
  ASSERT_EQ(r.values.size(), 6u);
  EXPECT_TRUE(r.converged);
  const EigenDecomposition exact = solve_symmetric_eigen(q.to_dense());
  for (std::size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(r.values[j], exact.values[j], 1e-7);
}

TEST(BlockLanczos, DisconnectedGraphRepeatedZeros) {
  // Two disjoint K10s: the kernel is 2-dimensional; the width->=2 block
  // captures the multiplicity without needing a breakdown restart per
  // direction.
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i < 10; ++i)
    for (graph::NodeId j = i + 1; j < 10; ++j) edges.push_back({i, j, 1.0});
  for (graph::NodeId i = 10; i < 20; ++i)
    for (graph::NodeId j = i + 1; j < 20; ++j) edges.push_back({i, j, 1.0});
  const SymCsrMatrix q = graph::build_laplacian(graph::Graph(20, edges));
  BlockLanczosOptions opts;
  opts.num_eigenpairs = 3;
  const LanczosResult r = block_lanczos_smallest(q, opts);
  EXPECT_NEAR(r.values[0], 0.0, 1e-8);
  EXPECT_NEAR(r.values[1], 0.0, 1e-8);
  EXPECT_NEAR(r.values[2], 10.0, 1e-6);  // K10 second eigenvalue = n = 10
}

TEST(BlockLanczos, BitIdenticalAcrossThreadCounts) {
  // Every reduction in the block driver uses the fixed-block deterministic
  // kernels, so 1 thread, 2 threads and the auto lane (8 threads in the
  // test_block_lanczos_mt ctest run) must agree bitwise.
  const SymCsrMatrix q = random_laplacian(300, 900, 11);
  BlockLanczosOptions opts;
  opts.num_eigenpairs = 6;
  opts.parallel = ParallelConfig::with_threads(1);
  const LanczosResult one = block_lanczos_smallest(q, opts);
  opts.parallel = ParallelConfig::with_threads(2);
  const LanczosResult two = block_lanczos_smallest(q, opts);
  opts.parallel = ParallelConfig::with_threads(0);  // $SPECPART_THREADS
  const LanczosResult autod = block_lanczos_smallest(q, opts);
  ASSERT_EQ(one.values.size(), two.values.size());
  ASSERT_EQ(one.values.size(), autod.values.size());
  for (std::size_t j = 0; j < one.values.size(); ++j) {
    EXPECT_EQ(one.values[j], two.values[j]) << "pair " << j;
    EXPECT_EQ(one.values[j], autod.values[j]) << "pair " << j;
  }
  EXPECT_EQ(one.vectors.max_abs_diff(two.vectors), 0.0);
  EXPECT_EQ(one.vectors.max_abs_diff(autod.vectors), 0.0);
  EXPECT_EQ(one.iterations, two.iterations);
  EXPECT_EQ(one.matrix_bytes_moved, two.matrix_bytes_moved);
}

TEST(BlockLanczos, CountersTrackMatrixTraffic) {
  const SymCsrMatrix q = random_laplacian(800, 2400, 13);
  const std::size_t d = 8;

  BlockLanczosOptions bopts;
  bopts.num_eigenpairs = d;
  const LanczosResult block = block_lanczos_smallest(q, bopts);
  ASSERT_TRUE(block.converged);
  EXPECT_GT(block.operator_applies, 0u);
  EXPECT_GT(block.flops, 0u);
  EXPECT_GT(block.matrix_bytes_moved, 0u);
  // One stream of the matrix serves a whole panel: bytes = sweeps x size.
  EXPECT_EQ(block.matrix_bytes_moved % q.stream_bytes(), 0u);

  LanczosOptions sopts;
  sopts.num_eigenpairs = d;
  const LanczosResult scalar = lanczos_smallest(q, sopts);
  ASSERT_TRUE(scalar.converged);
  EXPECT_EQ(scalar.matrix_bytes_moved,
            scalar.operator_applies * q.stream_bytes());

  // The headline contract: the block backend moves at least 2x fewer
  // Laplacian bytes per converged eigenpair than the scalar matvec chain.
  const double scalar_bpp = static_cast<double>(scalar.matrix_bytes_moved) /
                            static_cast<double>(scalar.num_converged);
  const double block_bpp = static_cast<double>(block.matrix_bytes_moved) /
                           static_cast<double>(block.num_converged);
  EXPECT_GE(scalar_bpp, 2.0 * block_bpp)
      << "scalar bytes/pair " << scalar_bpp << " vs block " << block_bpp;
}

TEST(EigenSolverApi, BackendNames) {
  EXPECT_EQ(eigen_solver(SolverBackend::kScalar).name(), "scalar");
  EXPECT_EQ(eigen_solver(SolverBackend::kBlock).name(), "block");
}

TEST(EigenSolverApi, ScalarBackendByteIdenticalToDirectLanczos) {
  const SymCsrMatrix q = random_laplacian(150, 400, 17);
  const std::size_t d = 6;
  const std::uint64_t seed = 0xABCDEFULL;

  SolverOptions sopts;  // defaults: the embedding driver's configuration
  const LanczosResult via_api = eigen_solver(SolverBackend::kScalar)
                                    .solve_smallest(q, d, seed, sopts,
                                                    ParallelConfig{}, nullptr);

  LanczosOptions direct;
  direct.num_eigenpairs = d;
  direct.tolerance = sopts.tolerance;
  direct.seed = seed;
  const LanczosResult expected = lanczos_smallest(q, direct);

  ASSERT_EQ(via_api.values.size(), expected.values.size());
  for (std::size_t j = 0; j < expected.values.size(); ++j)
    EXPECT_EQ(via_api.values[j], expected.values[j]) << "pair " << j;
  EXPECT_EQ(via_api.vectors.max_abs_diff(expected.vectors), 0.0);
  EXPECT_EQ(via_api.iterations, expected.iterations);
  EXPECT_EQ(via_api.converged, expected.converged);
}

TEST(EigenSolverApi, BlockBackendThroughEmbedding) {
  const SymCsrMatrix q = random_laplacian(400, 1200, 19);
  spectral::EmbeddingOptions eopts;
  eopts.count = 6;
  eopts.solver.backend = SolverBackend::kBlock;
  eopts.solver.dense_threshold = 0;  // force the iterative path
  Diagnostics diag;
  const spectral::EigenBasis basis =
      spectral::compute_eigenbasis(q, eopts, &diag);
  ASSERT_TRUE(basis.converged);
  EXPECT_EQ(basis.dimension(), 6u);
  EXPECT_NEAR(basis.values[0], 0.0, 1e-7);
  // The solve cost counters flow into the basis and the diagnostics sink.
  EXPECT_GT(basis.solve_flops, 0u);
  EXPECT_GT(basis.solve_bytes_moved, 0u);
  EXPECT_EQ(diag.counter("eigensolve", "flops"), basis.solve_flops);
  EXPECT_EQ(diag.counter("eigensolve", "matrix_bytes_moved"),
            basis.solve_bytes_moved);
}

TEST(EigenSolverApi, BlockBackendOnDegenerateNetlists) {
  // Clique-model path with pathological nets: a 0-pin net, 1-pin nets
  // (isolated pins contribute nothing), plus real nets — and vertex 9
  // appearing only in a 1-pin net, leaving it isolated (disconnected
  // Laplacian with an empty row).
  std::vector<std::vector<graph::NodeId>> nets = {
      {},                    // 0-pin net
      {3},                   // 1-pin net
      {9},                   // 1-pin net on an otherwise isolated vertex
      {0, 1, 2, 3},          //
      {2, 3, 4, 5},          //
      {4, 5, 6, 7, 8},       //
      {0, 6, 7},             //
      {1, 8},                //
  };
  const graph::Hypergraph h(10, std::move(nets));
  const SymCsrMatrix q =
      model::build_clique_laplacian(h, model::NetModel::kStandard);

  spectral::EmbeddingOptions eopts;
  eopts.count = 3;
  eopts.solver.backend = SolverBackend::kBlock;
  eopts.solver.dense_threshold = 0;  // force block Lanczos despite n = 10
  const spectral::EigenBasis basis = spectral::compute_eigenbasis(q, eopts);
  ASSERT_GE(basis.dimension(), 3u);
  // Two components (the connected core and the isolated vertex 9) give a
  // 2-dimensional kernel.
  EXPECT_NEAR(basis.values[0], 0.0, 1e-8);
  EXPECT_NEAR(basis.values[1], 0.0, 1e-8);
  EXPECT_GT(basis.values[2], 1e-6);
}

/// Random symmetric band matrix plus its dense mirror, for oracle checks
/// of the spectrum slicer the block solver's convergence checks run on.
std::pair<BandMatrix, DenseMatrix> random_band(std::size_t n, std::size_t bw,
                                               std::uint64_t seed) {
  Rng rng(seed);
  BandMatrix a(n, bw);
  DenseMatrix d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k <= std::min(i, bw); ++k) {
      a.at(i, k) = rng.next_normal();
      d.at(i, i - k) = a.at(i, k);
      d.at(i - k, i) = a.at(i, k);
    }
  return {std::move(a), std::move(d)};
}

TEST(BandEigen, MatchesDenseOnRandomBandMatrix) {
  const auto [a, d] = random_band(90, 5, 21);
  const std::size_t count = 7;
  const BandEigenPairs top = band_eigen_largest(a, count);
  ASSERT_TRUE(top.ok);
  ASSERT_EQ(top.values.size(), count);
  const EigenDecomposition exact = solve_symmetric_eigen(d);  // ascending
  const double scale = std::abs(exact.values.back()) + 1.0;
  for (std::size_t j = 0; j < count; ++j) {
    // values are the largest, descending.
    EXPECT_NEAR(top.values[j], exact.values[90 - 1 - j], 1e-10 * scale)
        << "pair " << j;
    // Residual-certified eigenvectors: ||A v - lambda v|| tiny.
    const Vec v = top.vectors.col(j);
    Vec av = d.matvec(v);
    axpy(-top.values[j], v, av);
    EXPECT_LT(norm(av), 1e-8 * scale) << "pair " << j;
  }
  for (std::size_t x = 0; x < count; ++x)
    for (std::size_t y = x; y < count; ++y)
      EXPECT_NEAR(dot(top.vectors.col(x), top.vectors.col(y)),
                  x == y ? 1.0 : 0.0, 1e-9)
          << x << "," << y;
}

TEST(BandEigen, RepeatedEigenvaluesFromTwinBlocks) {
  // Two identical uncoupled diagonal blocks: every eigenvalue appears
  // twice, exercising the cluster path of the inverse iteration (shifted
  // solves + in-cluster orthogonalization).
  const std::size_t half = 40, bw = 3, n = 2 * half;
  const auto [block, bd] = random_band(half, bw, 33);
  BandMatrix a(n, bw);
  DenseMatrix d(n, n);
  for (std::size_t i = 0; i < half; ++i)
    for (std::size_t k = 0; k <= std::min(i, bw); ++k) {
      a.at(i, k) = block.at(i, k);
      a.at(half + i, k) = block.at(i, k);
      d.at(i, i - k) = d.at(i - k, i) = block.at(i, k);
      d.at(half + i, half + i - k) = block.at(i, k);
      d.at(half + i - k, half + i) = block.at(i, k);
    }
  const std::size_t count = 8;
  const BandEigenPairs top = band_eigen_largest(a, count);
  ASSERT_TRUE(top.ok);
  const EigenDecomposition exact = solve_symmetric_eigen(d);
  const double scale = std::abs(exact.values.back()) + 1.0;
  for (std::size_t j = 0; j < count; ++j)
    EXPECT_NEAR(top.values[j], exact.values[n - 1 - j], 1e-9 * scale)
        << "pair " << j;
  // Doubled spectrum: pairs (0,1), (2,3), ... share their eigenvalue...
  for (std::size_t j = 0; j + 1 < count; j += 2)
    EXPECT_NEAR(top.values[j], top.values[j + 1], 1e-9 * scale);
  // ...and the returned cluster vectors must still be orthonormal.
  for (std::size_t x = 0; x < count; ++x)
    for (std::size_t y = x; y < count; ++y)
      EXPECT_NEAR(dot(top.vectors.col(x), top.vectors.col(y)),
                  x == y ? 1.0 : 0.0, 1e-8)
          << x << "," << y;
}

TEST(EigenSolverApi, BlockBackendDeterministicForFixedSeed) {
  const SymCsrMatrix q = random_laplacian(200, 500, 23);
  BlockLanczosOptions opts;
  opts.num_eigenpairs = 4;
  const LanczosResult a = block_lanczos_smallest(q, opts);
  const LanczosResult b = block_lanczos_smallest(q, opts);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_DOUBLE_EQ(a.values[j], b.values[j]);
  EXPECT_EQ(a.vectors.max_abs_diff(b.vectors), 0.0);
}

}  // namespace
}  // namespace specpart::linalg
