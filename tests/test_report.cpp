// Tests for the partition quality report.
#include <gtest/gtest.h>

#include "part/objectives.h"
#include "part/report.h"

namespace specpart::part {
namespace {

graph::Hypergraph netlist() {
  return graph::Hypergraph(6, {{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}});
}

TEST(Report, MetricsMatchObjectivesModule) {
  const graph::Hypergraph h = netlist();
  const Partition p({0, 0, 0, 1, 1, 1}, 2);
  const QualityReport r = evaluate(h, p);
  EXPECT_DOUBLE_EQ(r.cut_nets, cut_nets(h, p));
  EXPECT_DOUBLE_EQ(r.k_minus_one, k_minus_one_cost(h, p));
  EXPECT_DOUBLE_EQ(r.soed, sum_of_external_degrees(h, p));
  EXPECT_DOUBLE_EQ(r.absorption, absorption(h, p));
  EXPECT_DOUBLE_EQ(r.scaled_cost, scaled_cost(h, p));
  EXPECT_DOUBLE_EQ(r.ratio_cut, ratio_cut(h, p));
}

TEST(Report, PerClusterStats) {
  const graph::Hypergraph h = netlist();
  const Partition p({0, 0, 0, 1, 1, 1}, 2);
  const QualityReport r = evaluate(h, p);
  ASSERT_EQ(r.clusters.size(), 2u);
  EXPECT_EQ(r.clusters[0].size, 3u);
  EXPECT_EQ(r.clusters[1].size, 3u);
  // Cut nets: {2,3} and {0,5}; both touch both clusters.
  EXPECT_DOUBLE_EQ(r.clusters[0].external_degree, 2.0);
  EXPECT_DOUBLE_EQ(r.clusters[1].external_degree, 2.0);
  // Internal: {0,1,2} in cluster 0, {3,4,5} in cluster 1.
  EXPECT_DOUBLE_EQ(r.clusters[0].internal_nets, 1.0);
  EXPECT_DOUBLE_EQ(r.clusters[1].internal_nets, 1.0);
}

TEST(Report, ImbalanceOfPerfectSplit) {
  const graph::Hypergraph h = netlist();
  const QualityReport balanced = evaluate(h, Partition({0, 0, 0, 1, 1, 1}, 2));
  EXPECT_DOUBLE_EQ(balanced.imbalance, 1.0);
  const QualityReport skewed = evaluate(h, Partition({0, 0, 0, 0, 0, 1}, 2));
  EXPECT_NEAR(skewed.imbalance, 5.0 / 3.0, 1e-12);
}

TEST(Report, RenderingContainsKeyLines) {
  const graph::Hypergraph h = netlist();
  const std::string text = report_string(h, Partition({0, 1, 0, 1, 0, 1}, 2));
  EXPECT_NE(text.find("cut nets"), std::string::npos);
  EXPECT_NE(text.find("scaled cost"), std::string::npos);
  EXPECT_NE(text.find("cluster 0"), std::string::npos);
  EXPECT_NE(text.find("cluster 1"), std::string::npos);
}

TEST(Report, SingleClusterPartition) {
  const graph::Hypergraph h = netlist();
  const QualityReport r = evaluate(h, Partition(6, 1));
  EXPECT_DOUBLE_EQ(r.cut_nets, 0.0);
  EXPECT_DOUBLE_EQ(r.absorption, 4.0);
  EXPECT_DOUBLE_EQ(r.imbalance, 1.0);
}

}  // namespace
}  // namespace specpart::part
