// Tests for hyperedge-to-graph net models.
//
// Includes a Monte Carlo check of the partitioning-specific model's defining
// property: conditioned on a uniform random bipartition cutting the net, the
// expected total cost of cut clique edges is 1.
#include <gtest/gtest.h>

#include <cmath>

#include "model/clique_models.h"
#include "model/transforms.h"
#include "util/rng.h"

namespace specpart::model {
namespace {

TEST(CliqueCost, StandardModel) {
  EXPECT_DOUBLE_EQ(clique_edge_cost(NetModel::kStandard, 2), 1.0);
  EXPECT_DOUBLE_EQ(clique_edge_cost(NetModel::kStandard, 3), 0.5);
  EXPECT_DOUBLE_EQ(clique_edge_cost(NetModel::kStandard, 5), 0.25);
}

TEST(CliqueCost, FrankleModel) {
  EXPECT_DOUBLE_EQ(clique_edge_cost(NetModel::kFrankle, 2), 1.0);
  EXPECT_NEAR(clique_edge_cost(NetModel::kFrankle, 8), std::pow(0.25, 1.5),
              1e-15);
}

TEST(CliqueCost, PartitioningSpecificTwoPin) {
  // s=2: 4 * (1 - 1/2) / 2 = 1: a 2-pin net cut costs exactly 1.
  EXPECT_DOUBLE_EQ(clique_edge_cost(NetModel::kPartitioningSpecific, 2), 1.0);
}

TEST(CliqueCost, AllModelsDecreaseWithSize) {
  for (NetModel m : {NetModel::kStandard, NetModel::kPartitioningSpecific,
                     NetModel::kFrankle}) {
    for (std::size_t s = 2; s < 20; ++s)
      EXPECT_GT(clique_edge_cost(m, s), clique_edge_cost(m, s + 1))
          << net_model_name(m) << " s=" << s;
  }
}

class PsModelExpectedCost : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PsModelExpectedCost, ConditionedOnCutIsOne) {
  const std::size_t s = GetParam();
  const double cost = clique_edge_cost(NetModel::kPartitioningSpecific, s);
  Rng rng(1000 + s);
  double total = 0.0;
  std::size_t cut_trials = 0;
  const std::size_t trials = 200000;
  for (std::size_t t = 0; t < trials; ++t) {
    // Random bipartition of the s pins.
    std::size_t side0 = 0;
    for (std::size_t p = 0; p < s; ++p)
      if (rng.next_bool()) ++side0;
    if (side0 == 0 || side0 == s) continue;  // net not cut
    ++cut_trials;
    total += cost * static_cast<double>(side0 * (s - side0));
  }
  ASSERT_GT(cut_trials, 0u);
  EXPECT_NEAR(total / static_cast<double>(cut_trials), 1.0, 0.02)
      << "net size " << s;
}

INSTANTIATE_TEST_SUITE_P(NetSizes, PsModelExpectedCost,
                         ::testing::Values(2, 3, 4, 5, 8, 12));

TEST(CliqueExpand, TwoPinNetIsEdge) {
  graph::Hypergraph h(3, {{0, 1}, {1, 2}});
  const graph::Graph g = clique_expand(h, NetModel::kStandard);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 2.0);
}

TEST(CliqueExpand, TriangleFromThreePinNet) {
  graph::Hypergraph h(3, {{0, 1, 2}});
  const graph::Graph g = clique_expand(h, NetModel::kStandard);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.degree(0), 1.0);  // 2 edges x 0.5 each
}

TEST(CliqueExpand, OverlappingNetsMergeWeights) {
  graph::Hypergraph h(2, {{0, 1}, {0, 1}});
  const graph::Graph g = clique_expand(h, NetModel::kStandard);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 2.0);
}

TEST(CliqueExpand, NetWeightScalesCost) {
  graph::Hypergraph h(2, {{0, 1}}, {3.0});
  const graph::Graph g = clique_expand(h, NetModel::kStandard);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 3.0);
}

TEST(CliqueExpand, SkipsLargeNets) {
  graph::Hypergraph h(5, {{0, 1, 2, 3, 4}, {0, 1}});
  const graph::Graph g = clique_expand(h, NetModel::kStandard, 4);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(CliqueExpand, SinglePinNetsIgnored) {
  graph::Hypergraph h(2, {{0}, {0, 1}});
  const graph::Graph g = clique_expand(h, NetModel::kStandard);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(StarExpand, AddsDummyPerNet) {
  graph::Hypergraph h(3, {{0, 1, 2}, {1, 2}});
  std::vector<std::uint32_t> dummy_of;
  const graph::Graph g = star_expand(h, 1.0, &dummy_of);
  EXPECT_EQ(g.num_nodes(), 5u);  // 3 modules + 2 dummies
  EXPECT_EQ(g.num_edges(), 5u);  // 3 + 2 star edges
  EXPECT_EQ(dummy_of[0], 3u);
  EXPECT_EQ(dummy_of[1], 4u);
  EXPECT_DOUBLE_EQ(g.degree(3), 3.0);
}

TEST(StarExpand, SkipsSinglePinNets) {
  graph::Hypergraph h(2, {{0}, {0, 1}});
  std::vector<std::uint32_t> dummy_of;
  const graph::Graph g = star_expand(h, 2.0, &dummy_of);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(dummy_of[0], UINT32_MAX);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 4.0);  // 2 edges x weight 2
}

TEST(DualGraph, SharedModulesBecomeWeights) {
  graph::Hypergraph h(4, {{0, 1, 2}, {1, 2, 3}, {3}});
  const graph::Graph g = dual_graph(h);
  EXPECT_EQ(g.num_nodes(), 3u);  // one vertex per net
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 3.0);  // nets 0,1 share {1,2}; 1,2 share {3}
}

}  // namespace
}  // namespace specpart::model
