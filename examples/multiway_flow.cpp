// Multi-way partitioning flow: generate a synthetic circuit and compare
// every multi-way algorithm in the library (RSB, KP, SFC+DP-RP, MELO+DP-RP)
// on Scaled Cost — a miniature of the paper's Table 4.
//
//   $ ./multiway_flow [--modules N] [--k K] [--seed S]
#include <cstdio>

#include "core/drivers.h"
#include "graph/generator.h"
#include "part/objectives.h"
#include "spectral/dprp.h"
#include "spectral/kp.h"
#include "spectral/rsb.h"
#include "spectral/sfc.h"
#include "util/cli.h"
#include "util/error.h"

using namespace specpart;

int main(int argc, char** argv) {
  Cli cli("multiway_flow", "compare multi-way partitioners on one circuit");
  cli.add_flag("modules", "600", "number of modules");
  cli.add_flag("k", "4", "number of clusters");
  cli.add_flag("seed", "42", "generator seed");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto n = static_cast<std::size_t>(cli.get_int("modules"));
    const auto k = static_cast<std::uint32_t>(cli.get_int("k"));

    graph::GeneratorConfig cfg;
    cfg.num_modules = n;
    cfg.num_nets = n + n / 10;
    cfg.num_clusters = k;
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const graph::Hypergraph h = graph::generate_netlist(cfg);
    std::printf("circuit: %zu modules, %zu nets, %zu pins; k = %u\n\n",
                h.num_nodes(), h.num_nets(), h.num_pins(), k);

    auto report = [&](const char* name, const part::Partition& p) {
      std::printf("  %-10s scaled cost = %9.3f (x1e5)   cut nets = %5.0f\n",
                  name, 1e5 * part::scaled_cost(h, p), part::cut_nets(h, p));
    };

    report("RSB", spectral::rsb_partition(h, k, spectral::RsbOptions{}));
    report("KP", spectral::kp_partition(h, k, spectral::KpOptions{}));

    spectral::DprpOptions dpo;
    dpo.k = k;
    const part::Ordering sfc = spectral::sfc_ordering(h, spectral::SfcOptions{});
    report("SFC+DP-RP", spectral::dprp_split(h, sfc, dpo).partition);

    core::MeloOptions m;
    m.num_starts = 2;
    report("MELO+DP-RP", core::melo_multiway(h, k, m).partition);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "multiway_flow: %s\n", e.what());
    return 1;
  }
}
