// specpart_router: the fault-tolerant front tier of a specpart fleet.
//
// Speaks the same wire protocol as specpart_server (service/protocol.h)
// over stdio or TCP, but instead of computing locally it consistent-hashes
// each request's netlist fingerprint across N backend shards, with
// retry/backoff, per-shard circuit breakers, active health checks,
// hash-ring failover, and a local degraded-deadline fallback when the
// whole fleet is down (service/router.h). Because the pipeline is
// deterministic, clients get byte-identical responses no matter which
// shard — or the router itself — computed them.
//
//   $ ./specpart_server --port 7171 &          # shard 0
//   $ ./specpart_server --port 7172 &          # shard 1
//   $ ./specpart_router --shards 127.0.0.1:7171,127.0.0.1:7172 --port 7077
//
// The METRICS control frame aggregates the tier: router counters
// (failovers, local fallbacks, retries) plus per-shard breaker state.
#include <csignal>
#include <cstdio>
#include <iostream>

#include "service/net.h"
#include "service/router.h"
#include "service/server.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/stringutil.h"

using namespace specpart;

namespace {

/// "host:port,host:port,..." -> one ShardClientOptions per backend.
std::vector<service::ShardClientOptions> parse_shards(
    const std::string& spec, const service::ShardClientOptions& base) {
  std::vector<service::ShardClientOptions> shards;
  for (const std::string_view entry : split_char(spec, ',')) {
    const std::string_view stripped = trim(entry);
    if (stripped.empty()) continue;
    const std::size_t colon = stripped.rfind(':');
    SP_CHECK_INPUT(colon != std::string_view::npos && colon > 0 &&
                       colon + 1 < stripped.size(),
                   "--shards entries must be host:port, got '" +
                       std::string(stripped) + "'");
    service::ShardClientOptions opts = base;
    opts.host = std::string(stripped.substr(0, colon));
    opts.port = static_cast<std::uint16_t>(
        parse_size(stripped.substr(colon + 1), "shard port"));
    shards.push_back(std::move(opts));
  }
  return shards;
}

}  // namespace

int main(int argc, char** argv) {
  // A shard dying mid-write must surface as a stream error on that one
  // connection, never as process death.
  std::signal(SIGPIPE, SIG_IGN);
  Cli cli("specpart_router",
          "consistent-hash request router over specpart_server shards (see "
          "docs/SERVING.md)");
  cli.add_flag("shards", "",
               "comma-separated host:port backends (empty = no shards: "
               "every request computes locally)");
  cli.add_flag("port", "-1",
               "TCP port to listen on (-1 = stdio mode, 0 = kernel-assigned; "
               "the bound port is printed to stderr)");
  cli.add_flag("once", "false", "TCP mode: exit after the first client");
  cli.add_flag("vnodes", "64", "virtual nodes per shard on the hash ring");
  cli.add_flag("connect-timeout-ms", "250", "per-shard connect deadline");
  cli.add_flag("io-timeout-ms", "30000",
               "per-shard read/write deadline while a call is in flight");
  cli.add_flag("retries", "2",
               "resend attempts per shard after the first failure");
  cli.add_flag("backoff-ms", "10", "base retry backoff (doubles per retry)");
  cli.add_flag("backoff-max-ms", "200", "retry backoff ceiling");
  cli.add_flag("breaker-failures", "3",
               "consecutive failures that open a shard's circuit breaker");
  cli.add_flag("breaker-cooldown", "1",
               "seconds an open breaker waits before its half-open probe");
  cli.add_flag("health-interval", "2",
               "seconds between active PING health checks (0 disables)");
  cli.add_flag("local-deadline", "30",
               "degraded compute budget in seconds for local fallback "
               "requests when every shard is down (0 = unlimited)");
  cli.add_flag("workers", "2", "local fallback engine worker threads");
  cli.add_flag("cache-mb", "64",
               "local fallback embedding-cache budget in MiB");
  cli.add_flag("cache-dir", "",
               "persistent tier-2 basis store for the local fallback engine "
               "(empty disables the tier)");
  cli.add_flag("disk-budget-mb", "1024",
               "local fallback tier-2 byte budget in MiB");
  cli.add_flag("threads", "0",
               "local fallback compute threads (0 = auto)");
  cli.add_flag("max-payload-mb", "256",
               "largest REQUEST payload accepted, in MiB");
  try {
    if (!cli.parse(argc, argv)) return 0;
    service::ShardClientOptions base;
    base.connect_timeout_ms = static_cast<int>(cli.get_int("connect-timeout-ms"));
    base.io_timeout_ms = static_cast<int>(cli.get_int("io-timeout-ms"));
    base.backoff.max_retries =
        static_cast<std::size_t>(cli.get_int("retries"));
    base.backoff.base_ms = static_cast<std::uint64_t>(cli.get_int("backoff-ms"));
    base.backoff.max_ms =
        static_cast<std::uint64_t>(cli.get_int("backoff-max-ms"));
    base.breaker.failure_threshold =
        static_cast<std::size_t>(cli.get_int("breaker-failures"));
    base.breaker.cooldown_seconds = cli.get_double("breaker-cooldown");

    service::RouterOptions opts;
    opts.shards = parse_shards(cli.get("shards"), base);
    opts.vnodes = static_cast<std::size_t>(cli.get_int("vnodes"));
    opts.health_interval_seconds = cli.get_double("health-interval");
    opts.local_deadline_seconds = cli.get_double("local-deadline");
    opts.local.num_workers = static_cast<std::size_t>(cli.get_int("workers"));
    opts.local.cache.max_bytes =
        static_cast<std::size_t>(cli.get_int("cache-mb")) << 20;
    opts.local.cache.cache_dir = cli.get("cache-dir");
    opts.local.cache.disk_budget_bytes =
        static_cast<std::size_t>(cli.get_int("disk-budget-mb")) << 20;
    opts.local.parallel = ParallelConfig::with_threads(
        static_cast<std::size_t>(cli.get_int("threads")));
    service::ShardRouter router(opts);
    service::RouterBackend backend(router);

    service::ServeOptions serve;
    serve.limits.max_payload_bytes =
        static_cast<std::size_t>(cli.get_int("max-payload-mb")) << 20;

    const std::int64_t port = cli.get_int("port");
    if (port < 0) {
      service::serve_stream(backend, std::cin, std::cout, serve);
      return 0;
    }
    std::uint16_t bound = 0;
    const int listen_fd =
        service::tcp_listen(static_cast<std::uint16_t>(port), &bound);
    std::fprintf(stderr, "specpart_router: listening on port %u (%zu shards)\n",
                 static_cast<unsigned>(bound), router.num_shards());
    const bool once = cli.get_bool("once");
    for (;;) {
      const int conn = service::tcp_accept(listen_fd);
      service::FdStreamBuf in_buf(conn);
      service::FdStreamBuf out_buf(conn);
      std::istream conn_in(&in_buf);
      std::ostream conn_out(&out_buf);
      service::serve_stream(backend, conn_in, conn_out, serve);
      service::fd_close(conn);
      if (once) break;
    }
    service::fd_close(listen_fd);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "specpart_router: %s\n", e.what());
    return 1;
  }
}
