// Quickstart: build a small netlist in code and bipartition it with MELO.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~40 lines: construct a
// Hypergraph, configure MeloOptions, call melo_bipartition, inspect the
// result.
#include <cstdio>

#include "core/drivers.h"
#include "part/objectives.h"
#include "util/error.h"

using namespace specpart;

int main() try {
  // A tiny circuit: two 4-module blocks (dense internal nets) joined by a
  // single 2-pin net. Modules 0-3 are block A, modules 4-7 block B.
  graph::Hypergraph netlist(8, {
                                   {0, 1, 2},     // block A internal nets
                                   {1, 2, 3},
                                   {0, 3},
                                   {4, 5, 6},     // block B internal nets
                                   {5, 6, 7},
                                   {4, 7},
                                   {3, 4},        // the bridge
                               });

  core::MeloOptions options;
  options.num_eigenvectors = 4;  // d: the more, the better (within reason)

  // Balanced bipartitioning: both sides must hold >= 45% of the modules.
  const core::MeloBipartitionResult result =
      core::melo_bipartition(netlist, options, /*min_fraction=*/0.45);

  std::printf("MELO bipartition of an 8-module circuit\n");
  std::printf("  net cut   : %.0f (expected: 1, the bridge)\n", result.cut);
  std::printf("  ratio cut : %.4f\n", result.ratio_cut);
  std::printf("  cluster sizes: %zu / %zu\n",
              result.partition.cluster_size(0),
              result.partition.cluster_size(1));
  std::printf("  assignment: ");
  for (graph::NodeId v = 0; v < netlist.num_nodes(); ++v)
    std::printf("%u", result.partition.cluster_of(v));
  std::printf("\n");

  // Sanity: the cut reported matches an independent recount.
  const double recount = part::cut_nets(netlist, result.partition);
  std::printf("  recount   : %.0f (%s)\n", recount,
              recount == result.cut ? "consistent" : "MISMATCH");
  return recount == result.cut ? 0 : 1;
} catch (const Error& e) {
  std::fprintf(stderr, "quickstart: %s\n", e.what());
  return 1;
}
