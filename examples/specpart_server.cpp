// specpart_server: serve the partitioning wire protocol (service/protocol.h)
// over stdin/stdout or a TCP port.
//
//   $ ./specpart_server                     # stdio: pipe frames in and out
//   $ ./specpart_server --port 7077        # TCP on 127.0.0.1:7077
//   $ ./specpart_server --port 0 --once    # kernel-assigned port, one client
//
// Requests flow through PartitionService's bounded queue and worker pool;
// responses are written in request order (per connection), so a client can
// pipeline requests without reordering logic. Control lines:
//   PING     -> PONG (after all earlier responses)
//   METRICS  -> METRICS frame (key/value lines, END-terminated)
//   QUIT     -> drains, says BYE, closes the connection
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <iostream>
#include <mutex>
#include <thread>

#include "service/net.h"
#include "service/protocol.h"
#include "service/service.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/stringutil.h"

using namespace specpart;

namespace {

void write_metrics_frame(const service::MetricsSnapshot& snap,
                         std::ostream& out) {
  out << "METRICS\n";
  for (const auto& [key, value] : snap.key_values())
    out << "METRIC " << key << strprintf(" %.17g", value) << '\n';
  out << "END\n";
}

/// Serves one connection's byte streams until EOF or QUIT.
///
/// The reader (this function) parses frames and enqueues work; a dedicated
/// writer thread emits each response as soon as its future resolves. The
/// split matters: a pipelining client only sends more requests after it
/// reads responses, so a server that writes only between reads deadlocks
/// once the client's window fills. The queue preserves request order, so
/// clients still read responses strictly FIFO.
void serve_stream(service::PartitionService& svc, std::istream& in,
                  std::ostream& out, bool reject_when_full) {
  struct Item {
    enum Kind { kResponse, kReady, kPong, kMetrics, kBye } kind;
    std::future<service::PartitionResponse> future;  // kResponse
    service::PartitionResponse response;             // kReady
  };
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Item> items;
  const auto push = [&](Item item) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      items.push_back(std::move(item));
    }
    cv.notify_one();
  };
  std::thread writer([&] {
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return !items.empty(); });
        item = std::move(items.front());
        items.pop_front();
      }
      switch (item.kind) {
        case Item::kResponse:
          service::write_response(item.future.get(), out);
          break;
        case Item::kReady:
          service::write_response(item.response, out);
          break;
        case Item::kPong:
          out << "PONG\n";
          break;
        case Item::kMetrics:
          // Snapshot here, after all earlier responses went out, so the
          // frame reflects at least everything the client has seen.
          write_metrics_frame(svc.snapshot(), out);
          break;
        case Item::kBye:
          out << "BYE\n";
          out.flush();
          return;
      }
      out.flush();
    }
  });

  std::string line;
  bool failed = false;
  while (!failed && std::getline(in, line)) {
    const std::string_view stripped = trim(line);
    if (stripped.empty()) continue;
    try {
      if (starts_with(stripped, "REQUEST")) {
        service::PartitionRequest req = service::parse_request(line, in);
        Item item;
        if (reject_when_full) {
          if (svc.try_submit(std::move(req), item.future)) {
            item.kind = Item::kResponse;
          } else {
            // Admission control: the rejection is itself an error
            // response, so clients see *why* instead of a stall.
            item.kind = Item::kReady;
            item.response.id = req.id;
            item.response.status = "error";
            item.response.error = "rejected: queue full";
          }
        } else {
          item.kind = Item::kResponse;
          item.future = svc.submit(std::move(req));  // backpressure
        }
        push(std::move(item));
      } else if (stripped == "PING") {
        push(Item{Item::kPong, {}, {}});
      } else if (stripped == "METRICS") {
        push(Item{Item::kMetrics, {}, {}});
      } else if (stripped == "QUIT") {
        break;
      } else {
        throw Error("unknown frame '" + std::string(stripped) + "'");
      }
    } catch (const Error& e) {
      // A malformed frame poisons the rest of the stream (framing is
      // lost), so report and stop this connection.
      Item item;
      item.kind = Item::kReady;
      item.response.id = "?";
      item.response.status = "error";
      item.response.error = e.what();
      push(std::move(item));
      failed = true;
    }
  }
  push(Item{Item::kBye, {}, {}});
  writer.join();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("specpart_server",
          "serve partitioning requests over stdio or TCP (see "
          "docs/SERVING.md)");
  cli.add_flag("port", "-1",
               "TCP port to listen on (-1 = stdio mode, 0 = kernel-assigned; "
               "the bound port is printed to stderr)");
  cli.add_flag("once", "false", "TCP mode: exit after the first client");
  cli.add_flag("workers", "2", "worker threads executing requests");
  cli.add_flag("queue", "64", "job-queue capacity (admission control)");
  cli.add_flag("reject", "true",
               "true: reject requests when the queue is full (error "
               "response); false: block the reader (backpressure)");
  cli.add_flag("cache-mb", "256",
               "embedding-cache byte budget in MiB (0 disables caching)");
  cli.add_flag("quantum", "8",
               "eigensolve dimension quantum (see docs/SERVING.md)");
  cli.add_flag("deadline", "0",
               "per-request compute budget in seconds (0 = unlimited)");
  cli.add_flag("threads", "0",
               "compute-kernel threads per request (0 = auto: "
               "$SPECPART_THREADS or hardware concurrency)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    service::ServiceOptions opts;
    opts.num_workers = static_cast<std::size_t>(cli.get_int("workers"));
    opts.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
    opts.cache.max_bytes =
        static_cast<std::size_t>(cli.get_int("cache-mb")) << 20;
    opts.cache.dim_quantum = static_cast<std::size_t>(cli.get_int("quantum"));
    opts.deadline_seconds = cli.get_double("deadline");
    opts.parallel =
        ParallelConfig::with_threads(static_cast<std::size_t>(cli.get_int("threads")));
    const bool reject = cli.get_bool("reject");
    service::PartitionService svc(opts);

    const std::int64_t port = cli.get_int("port");
    if (port < 0) {
      serve_stream(svc, std::cin, std::cout, reject);
      return 0;
    }
    std::uint16_t bound = 0;
    const int listen_fd =
        service::tcp_listen(static_cast<std::uint16_t>(port), &bound);
    std::fprintf(stderr, "specpart_server: listening on port %u\n",
                 static_cast<unsigned>(bound));
    const bool once = cli.get_bool("once");
    for (;;) {
      const int conn = service::tcp_accept(listen_fd);
      service::FdStreamBuf in_buf(conn);
      service::FdStreamBuf out_buf(conn);
      std::istream conn_in(&in_buf);
      std::ostream conn_out(&out_buf);
      serve_stream(svc, conn_in, conn_out, reject);
      service::fd_close(conn);
      if (once) break;
    }
    service::fd_close(listen_fd);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "specpart_server: %s\n", e.what());
    return 1;
  }
}
