// specpart_server: serve the partitioning wire protocol (service/protocol.h)
// over stdin/stdout or a TCP port.
//
//   $ ./specpart_server                     # stdio: pipe frames in and out
//   $ ./specpart_server --port 7077        # TCP on 127.0.0.1:7077
//   $ ./specpart_server --port 0 --once    # kernel-assigned port, one client
//
// Requests flow through PartitionService's bounded queue and worker pool;
// responses are written in request order (per connection), so a client can
// pipeline requests without reordering logic. Control lines:
//   PING     -> PONG (after all earlier responses)
//   METRICS  -> METRICS frame (key/value lines, END-terminated)
//   QUIT     -> drains, says BYE, closes the connection
//
// The serving loop itself lives in service/server.h, shared with
// specpart_router and the multi-shard tests.
#include <csignal>
#include <cstdio>
#include <iostream>

#include "service/net.h"
#include "service/server.h"
#include "service/service.h"
#include "util/cli.h"
#include "util/error.h"

using namespace specpart;

int main(int argc, char** argv) {
  // A client vanishing mid-response must error that one stream, not
  // SIGPIPE-kill the server.
  std::signal(SIGPIPE, SIG_IGN);
  Cli cli("specpart_server",
          "serve partitioning requests over stdio or TCP (see "
          "docs/SERVING.md)");
  cli.add_flag("port", "-1",
               "TCP port to listen on (-1 = stdio mode, 0 = kernel-assigned; "
               "the bound port is printed to stderr)");
  cli.add_flag("once", "false", "TCP mode: exit after the first client");
  cli.add_flag("workers", "2", "worker threads executing requests");
  cli.add_flag("queue", "64", "job-queue capacity (admission control)");
  cli.add_flag("reject", "true",
               "true: reject requests when the queue is full (error "
               "response); false: block the reader (backpressure)");
  cli.add_flag("cache-mb", "256",
               "embedding-cache byte budget in MiB (0 disables caching)");
  cli.add_flag("quantum", "8",
               "eigensolve dimension quantum (see docs/SERVING.md)");
  cli.add_flag("cache-dir", "",
               "directory for the persistent tier-2 basis store (empty "
               "disables the tier; see docs/SERVING.md)");
  cli.add_flag("disk-budget-mb", "1024",
               "tier-2 store byte budget in MiB (LRU files beyond it are "
               "deleted)");
  cli.add_flag("deadline", "0",
               "per-request compute budget in seconds (0 = unlimited)");
  cli.add_flag("threads", "0",
               "compute-kernel threads per request (0 = auto: "
               "$SPECPART_THREADS or hardware concurrency)");
  cli.add_flag("idle-timeout", "0",
               "TCP mode: close a connection after this many seconds "
               "without a byte from the client (0 = never)");
  cli.add_flag("max-payload-mb", "256",
               "largest REQUEST payload accepted, in MiB");
  try {
    if (!cli.parse(argc, argv)) return 0;
    service::ServiceOptions opts;
    opts.num_workers = static_cast<std::size_t>(cli.get_int("workers"));
    opts.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
    opts.cache.max_bytes =
        static_cast<std::size_t>(cli.get_int("cache-mb")) << 20;
    opts.cache.dim_quantum = static_cast<std::size_t>(cli.get_int("quantum"));
    opts.cache.cache_dir = cli.get("cache-dir");
    opts.cache.disk_budget_bytes =
        static_cast<std::size_t>(cli.get_int("disk-budget-mb")) << 20;
    opts.deadline_seconds = cli.get_double("deadline");
    opts.parallel =
        ParallelConfig::with_threads(static_cast<std::size_t>(cli.get_int("threads")));
    service::PartitionService svc(opts);
    service::ServiceBackend backend(svc);

    service::ServeOptions serve;
    serve.reject_when_full = cli.get_bool("reject");
    serve.limits.max_payload_bytes =
        static_cast<std::size_t>(cli.get_int("max-payload-mb")) << 20;
    const double idle_timeout = cli.get_double("idle-timeout");

    const std::int64_t port = cli.get_int("port");
    if (port < 0) {
      service::serve_stream(backend, std::cin, std::cout, serve);
      return 0;
    }
    std::uint16_t bound = 0;
    const int listen_fd =
        service::tcp_listen(static_cast<std::uint16_t>(port), &bound);
    std::fprintf(stderr, "specpart_server: listening on port %u\n",
                 static_cast<unsigned>(bound));
    const bool once = cli.get_bool("once");
    for (;;) {
      const int conn = service::tcp_accept(listen_fd);
      service::FdStreamBuf in_buf(conn);
      service::FdStreamBuf out_buf(conn);
      if (idle_timeout > 0.0)
        in_buf.set_read_timeout(static_cast<int>(idle_timeout * 1000.0));
      std::istream conn_in(&in_buf);
      std::ostream conn_out(&out_buf);
      service::serve_stream(backend, conn_in, conn_out, serve);
      if (in_buf.timed_out())
        std::fprintf(stderr, "specpart_server: closed idle connection\n");
      service::fd_close(conn);
      if (once) break;
    }
    service::fd_close(listen_fd);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "specpart_server: %s\n", e.what());
    return 1;
  }
}
