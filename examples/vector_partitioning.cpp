// The paper's reduction, made visible.
//
//   $ ./vector_partitioning
//
// Builds a small graph, computes ALL of its Laplacian eigenpairs, maps each
// vertex to its vector y_i[j] = sqrt(H - lambda_j) mu_j(i), and then checks
// numerically, for several partitions, that
//
//     sum_h ||Y_h||^2  =  n H - f(P_k)
//
// i.e. minimizing the cut is EXACTLY maximizing the summed squared subset
// magnitudes. It finishes by solving the vector partitioning instance
// exactly and confirming the optimum is a minimum-cut bipartition.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/reduction.h"
#include "core/vecpart.h"
#include "graph/graph.h"
#include "part/objectives.h"
#include "spectral/embedding.h"
#include "util/error.h"

using namespace specpart;

int main() try {
  // A 6-vertex graph: two triangles joined by one edge.
  const graph::Graph g(6, {{0, 1, 1.0},
                           {1, 2, 1.0},
                           {0, 2, 1.0},
                           {3, 4, 1.0},
                           {4, 5, 1.0},
                           {3, 5, 1.0},
                           {2, 3, 1.0}});

  spectral::EmbeddingOptions eopts;
  eopts.count = g.num_nodes();  // all n eigenvectors: the reduction is exact
  const spectral::EigenBasis basis = spectral::compute_eigenbasis(g, eopts);
  const double h_const = core::default_h(basis);

  std::printf("Laplacian eigenvalues:");
  for (double v : basis.values) std::printf(" %.3f", v);
  std::printf("\nH = %.3f (= lambda_max at d = n)\n\n", h_const);

  const core::VectorInstance inst =
      core::build_max_sum_instance(basis, h_const);
  std::printf("vertex vectors (rows, d = n = %zu):\n", inst.dimension());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    std::printf("  y_%zu = [", i);
    for (std::size_t j = 0; j < inst.dimension(); ++j)
      std::printf(" %6.3f", inst.vectors.at(i, j));
    std::printf(" ]   ||y||^2 = %.3f  = H - deg = %.3f\n",
                linalg::norm_sq(inst.vectors.row(i)),
                h_const - g.degree(static_cast<graph::NodeId>(i)));
  }

  std::printf("\nidentity check: sum_h ||Y_h||^2 = nH - f(P_k)\n");
  const std::vector<std::vector<std::uint32_t>> partitions = {
      {0, 0, 0, 1, 1, 1},  // the natural split (cut = 1)
      {0, 1, 0, 1, 0, 1},  // interleaved (bad cut)
      {0, 0, 1, 1, 2, 2},  // 3-way
  };
  bool all_ok = true;
  for (const auto& a : partitions) {
    const std::uint32_t k = 1 + *std::max_element(a.begin(), a.end());
    const part::Partition p(a, k);
    const double f = part::paper_f(g, p);
    const double lhs = core::sum_of_squared_magnitudes(inst, p);
    const double rhs = static_cast<double>(g.num_nodes()) * h_const - f;
    const bool ok = std::abs(lhs - rhs) < 1e-9 * (1.0 + rhs);
    all_ok = all_ok && ok;
    std::printf("  k=%u f=%.0f : sum ||Y_h||^2 = %.6f vs nH - f = %.6f  %s\n",
                k, f, lhs, rhs, ok ? "OK" : "MISMATCH");
  }

  // Exact max-sum vector partitioning == exact min-cut (balanced 3+3).
  const part::Partition best = core::solve_max_sum_exact(inst, 2, 3, 3);
  std::printf("\nexact max-sum balanced bipartition cuts %.0f edge(s): ",
              part::cut_weight(g, best));
  for (std::size_t i = 0; i < 6; ++i)
    std::printf("%u", best.cluster_of(static_cast<graph::NodeId>(i)));
  std::printf("  (expected the triangles split apart, cut = 1)\n");
  return all_ok && part::cut_weight(g, best) == 1.0 ? 0 : 1;
} catch (const Error& e) {
  std::fprintf(stderr, "vector_partitioning: %s\n", e.what());
  return 1;
}
