// specpart_loadgen: replay a deterministic mixed partitioning workload
// against the service layer and report throughput, latency percentiles,
// queue depth, and cache hit rate.
//
//   $ ./specpart_loadgen                          # in-process service
//   $ ./specpart_loadgen --requests 500 --workers 4
//   $ ./specpart_loadgen --connect localhost:7077 # against specpart_server
//
// The workload draws from a small pool of synthetic netlists and varies
// eigenvector count, scaling, k, and balance, so a realistic fraction of
// requests repeats an earlier embedding (content-addressed cache hits).
// Whenever a request's wire bytes repeat exactly, the loadgen also checks
// the response bytes repeat exactly — the serving determinism contract.
//
// --shards sweeps sharded topologies instead: for each shard count it
// spins up that many in-process TCP shard servers plus a ShardRouter and
// replays the same workload, then checks every response byte-identical
// across ALL topologies (the hash ring only changes *where* a request
// computes, never *what* it computes). --kill-shard-at N hard-kills the
// primary shard of the next request after N responses, exercising
// retry -> breaker -> ring failover under fire.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generator.h"
#include "service/net.h"
#include "service/protocol.h"
#include "service/router.h"
#include "service/server.h"
#include "service/service.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stringutil.h"

using namespace specpart;

namespace {

std::string request_wire(const service::PartitionRequest& req) {
  std::ostringstream out;
  service::write_request(req, out);
  return out.str();
}

std::string response_wire(const service::PartitionResponse& resp) {
  std::ostringstream out;
  service::write_response(resp, out);
  return out.str();
}

/// Deterministic mixed workload: `count` requests over a small pool of
/// synthetic netlists with varied pipeline settings. All requests use the
/// one eigensolver backend given by `solver` ("scalar" keeps every wire
/// byte identical to the pre-solver-field protocol).
std::vector<service::PartitionRequest> make_workload(
    std::size_t count, std::uint64_t seed, core::SolverBackend solver,
    core::SolverStrategy strategy, core::ObjectiveModel objective) {
  std::vector<graph::Hypergraph> pool;
  for (std::size_t i = 0; i < 5; ++i) {
    graph::GeneratorConfig cfg;
    cfg.name = strprintf("load%zu", i);
    // The last pool entry sits above the dense threshold so a multilevel
    // run actually exercises the V-cycle (and a flat run the Krylov
    // chain) instead of both collapsing to the dense oracle.
    cfg.num_modules = i < 4 ? 120 + 40 * i : 520;
    cfg.num_nets = cfg.num_modules + cfg.num_modules / 4;
    cfg.num_clusters = 4 + 2 * (i % 2);
    cfg.seed = 77 + i;
    pool.push_back(graph::generate_netlist(cfg));
  }

  const std::size_t dims[] = {6, 8, 10, 12};
  const core::CoordScaling scalings[] = {core::CoordScaling::kSqrtGap,
                                         core::CoordScaling::kGap};
  const std::uint32_t ks[] = {2, 2, 2, 4};
  const double balances[] = {0.45, 0.40, 0.35};

  Rng rng(seed);
  std::vector<service::PartitionRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    service::PartitionRequest req;
    req.id = strprintf("r%zu", i);
    req.graph = pool[rng.next_below(pool.size())];
    req.k = ks[rng.next_below(4)];
    req.balance = balances[rng.next_below(3)];
    req.pipeline.num_eigenvectors = dims[rng.next_below(4)];
    req.pipeline.scaling = scalings[rng.next_below(2)];
    req.pipeline.solver.backend = solver;
    req.pipeline.solver.strategy = strategy;
    req.pipeline.objective = objective;
    reqs.push_back(std::move(req));
  }
  return reqs;
}

/// Wire bytes of a request with the id field neutralized, so two requests
/// that differ only by id count as "identical work" for the determinism
/// check. (The response embeds the id, so compare responses the same way.)
std::string strip_id(const std::string& wire, const std::string& id) {
  const std::string needle = "id=" + id + " ";
  const std::size_t pos = wire.find(needle);
  if (pos == std::string::npos) return wire;
  return wire.substr(0, pos) + "id=? " + wire.substr(pos + needle.size());
}

struct RunResult {
  std::vector<service::PartitionResponse> responses;
  double elapsed_seconds = 0.0;
  /// Flattened METRICS key/values of the serving side after the run
  /// (snapshot in-process, METRICS frame over TCP).
  std::map<std::string, double> metrics;
};

struct Audit {
  std::size_t unique = 0;
  std::size_t repeats = 0;
  std::size_t mismatches = 0;
  std::size_t errors = 0;
};

/// Determinism audit: identical request bytes must yield identical
/// response bytes, whether the repeat was served cold, from cache, or by
/// a different shard.
Audit audit_run(const std::vector<service::PartitionRequest>& reqs,
                const RunResult& run) {
  std::map<std::string, std::string> seen;
  Audit a;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (run.responses[i].status == "error") ++a.errors;
    const std::string key = strip_id(request_wire(reqs[i]), reqs[i].id);
    const std::string resp =
        strip_id(response_wire(run.responses[i]), run.responses[i].id);
    const auto [it, inserted] = seen.emplace(key, resp);
    if (!inserted) {
      ++a.repeats;
      if (it->second != resp) ++a.mismatches;
    }
  }
  a.unique = seen.size();
  return a;
}

RunResult run_inproc(const std::vector<service::PartitionRequest>& reqs,
                     const service::ServiceOptions& opts) {
  service::PartitionService svc(opts);
  std::deque<std::future<service::PartitionResponse>> pending;
  RunResult run;
  run.responses.reserve(reqs.size());
  const auto start = std::chrono::steady_clock::now();
  for (const service::PartitionRequest& req : reqs)
    pending.push_back(svc.submit(req));
  for (auto& fut : pending) run.responses.push_back(fut.get());
  run.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const service::MetricsSnapshot snap = svc.snapshot();
  for (const auto& [key, value] : snap.key_values()) run.metrics[key] = value;
  std::cout << snap.render_text();
  return run;
}

/// tcp_connect with a short retry loop, so the loadgen can be launched
/// right after (or even slightly before) the server it targets.
int tcp_connect_retry(const std::string& host, std::uint16_t port) {
  for (int attempt = 0;; ++attempt) {
    try {
      return service::tcp_connect(host, port);
    } catch (const Error&) {
      if (attempt >= 19) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  }
}

RunResult run_tcp(const std::vector<service::PartitionRequest>& reqs,
                  const std::string& host, std::uint16_t port,
                  std::size_t window) {
  const int fd = tcp_connect_retry(host, port);
  service::FdStreamBuf in_buf(fd);
  service::FdStreamBuf out_buf(fd);
  std::istream in(&in_buf);
  std::ostream out(&out_buf);

  RunResult run;
  run.responses.reserve(reqs.size());
  const auto start = std::chrono::steady_clock::now();
  std::size_t sent = 0;
  // Pipelined: keep up to `window` requests in flight; the server
  // preserves order, so responses are read back FIFO.
  while (run.responses.size() < reqs.size()) {
    while (sent < reqs.size() && sent - run.responses.size() < window) {
      service::write_request(reqs[sent], out);
      ++sent;
    }
    out.flush();
    std::optional<service::PartitionResponse> resp = service::read_response(in);
    if (!resp)
      throw Error("loadgen: server closed the connection mid-run");
    run.responses.push_back(std::move(*resp));
  }
  run.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  out << "METRICS\n";
  out.flush();
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line) == "END") break;
    if (trim(line).empty()) continue;
    std::cout << line << '\n';
    // "METRIC <key> <value>" lines feed the post-run assertions
    // (--expect-disk-hit-rate).
    const std::vector<std::string> toks = split_ws(line);
    if (toks.size() == 3 && toks[0] == "METRIC")
      run.metrics[toks[1]] = parse_double(toks[2], "metric value");
  }
  out << "QUIT\n";
  out.flush();
  service::fd_close(fd);
  return run;
}

/// One sharded-topology run: `num_shards` in-process TCP shard servers
/// fronted by a ShardRouter. When `kill_at` >= 0, the primary shard of
/// request `kill_at` is hard-killed (listener + live connections severed)
/// right before that request is issued, so the router must recover it via
/// retry -> breaker -> ring failover. Returns every response; the caller
/// audits the bytes.
RunResult run_sharded(const std::vector<service::PartitionRequest>& reqs,
                      std::size_t num_shards, std::int64_t kill_at) {
  service::ShardServerOptions shard_opts;
  shard_opts.service.num_workers = 2;
  shard_opts.service.cache.max_bytes = 64ull << 20;
  std::vector<std::unique_ptr<service::ShardServer>> servers;
  servers.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i)
    servers.push_back(std::make_unique<service::ShardServer>(shard_opts));

  service::RouterOptions opts;
  for (const auto& server : servers) {
    service::ShardClientOptions shard;
    shard.port = server->port();
    shard.connect_timeout_ms = 1000;
    shard.backoff.base_ms = 5;
    shard.backoff.max_ms = 50;
    shard.breaker.cooldown_seconds = 0.5;
    opts.shards.push_back(shard);
  }
  opts.health_interval_seconds = 0.2;
  opts.local.num_workers = 2;
  opts.local.cache.max_bytes = 64ull << 20;
  service::ShardRouter router(opts);

  // The ring construction is deterministic, so an external replica maps
  // requests to shards exactly like the router's own — that's how we pick
  // a victim that is guaranteed to be carrying the next request.
  const service::HashRing ring(num_shards, opts.vnodes);

  RunResult run;
  run.responses.reserve(reqs.size());
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (kill_at >= 0 && i == static_cast<std::size_t>(kill_at)) {
      const Fingerprint key = service::routing_key(reqs[i]);
      const std::size_t victim = ring.primary(key.hi ^ key.lo);
      std::printf("loadgen: killing shard %zu (%s) before request %zu\n",
                  victim, router.shard(victim).name().c_str(), i);
      servers[victim]->kill();
    }
    run.responses.push_back(router.route(reqs[i]));
  }
  run.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << router.snapshot().render_text();
  for (auto& server : servers) server->stop();
  return run;
}

/// Replays the workload across every topology in `shard_counts` and
/// audits byte-identity across all of them. Returns the number of
/// cross-topology mismatches; the caller folds the per-run audits.
std::size_t run_topology_sweep(
    const std::vector<service::PartitionRequest>& reqs,
    const std::vector<std::size_t>& shard_counts, std::int64_t kill_at,
    std::vector<RunResult>& runs) {
  std::vector<std::string> reference;
  std::size_t cross_mismatches = 0;
  for (const std::size_t n : shard_counts) {
    // Killing the only shard of a 1-shard ring would just exercise local
    // fallback for the whole tail; reserve the kill for topologies where
    // ring failover can engage.
    const std::int64_t kill = n >= 2 ? kill_at : -1;
    std::printf("\nloadgen: === topology: %zu shard%s%s ===\n", n,
                n == 1 ? "" : "s",
                kill >= 0 ? " (with mid-run shard kill)" : "");
    RunResult run = run_sharded(reqs, n, kill);
    if (reference.empty()) {
      reference.reserve(run.responses.size());
      for (const auto& resp : run.responses)
        reference.push_back(strip_id(response_wire(resp), resp.id));
    } else {
      for (std::size_t i = 0; i < run.responses.size(); ++i) {
        const std::string wire =
            strip_id(response_wire(run.responses[i]), run.responses[i].id);
        if (wire != reference[i]) {
          ++cross_mismatches;
          std::fprintf(stderr,
                       "loadgen: topology %zu: request %zu bytes differ "
                       "from the reference topology\n",
                       n, i);
        }
      }
    }
    std::printf("loadgen: topology %zu: %zu requests in %.3f s\n", n,
                reqs.size(), run.elapsed_seconds);
    runs.push_back(std::move(run));
  }
  return cross_mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("specpart_loadgen",
          "replay a deterministic mixed workload against the partitioning "
          "service and report throughput / latency / cache hit rate");
  cli.add_flag("requests", "200", "number of requests to issue");
  cli.add_flag("seed", "1", "workload PRNG seed");
  cli.add_flag("workers", "2", "in-process mode: service worker threads");
  cli.add_flag("queue", "64", "in-process mode: job-queue capacity");
  cli.add_flag("cache-mb", "256",
               "in-process mode: embedding-cache budget in MiB (0 disables)");
  cli.add_flag("connect", "",
               "host:port of a running specpart_server (empty = in-process)");
  cli.add_flag("window", "16", "TCP mode: pipelining window");
  cli.add_flag("solver", "scalar",
               "eigensolver backend for every request: " +
                   core::solver_backend_tokens());
  cli.add_flag("solver-strategy", "flat",
               "eigensolve orchestration for every request: " +
                   core::solver_strategy_tokens() +
                   " (byte-identity is audited either way)");
  cli.add_flag("objective", "unnormalized",
               "spectral objective for every request: " +
                   core::objective_model_tokens() +
                   " (byte-identity is audited either way)");
  cli.add_flag("shards", "",
               "comma-separated shard counts (e.g. 1,2,4): replay the "
               "workload through an in-process router + TCP shards per "
               "topology and audit cross-topology byte-identity");
  cli.add_flag("kill-shard-at", "-1",
               "sharded mode: hard-kill the primary shard of this request "
               "index mid-run in every multi-shard topology (-1 = never)");
  cli.add_flag("cache-dir", "",
               "in-process mode: persistent tier-2 basis store directory "
               "(empty disables the tier)");
  cli.add_flag("disk-budget-mb", "1024",
               "in-process mode: tier-2 byte budget in MiB");
  cli.add_flag("dump-responses", "",
               "write every response's id-neutralized wire bytes to this "
               "file (restart-recovery audits)");
  cli.add_flag("check-responses", "",
               "compare this run's responses byte-for-byte against a file "
               "written by --dump-responses; mismatches fail the run");
  cli.add_flag("expect-disk-hit-rate", "-1",
               "fail unless storage_disk_hits / (hits + misses) from the "
               "post-run metrics reaches this fraction (-1 disables)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    // Shards die mid-write in this harness by design; that must error a
    // stream, not kill the process.
    std::signal(SIGPIPE, SIG_IGN);
    const std::size_t count =
        static_cast<std::size_t>(cli.get_int("requests"));
    const std::vector<service::PartitionRequest> reqs = make_workload(
        count, static_cast<std::uint64_t>(cli.get_int("seed")),
        core::parse_solver_backend(cli.get("solver")),
        core::parse_solver_strategy(cli.get("solver-strategy")),
        core::parse_objective_model(cli.get("objective")));

    const std::string shards_spec = cli.get("shards");
    if (!shards_spec.empty()) {
      std::vector<std::size_t> counts;
      for (const std::string& tok : split_char(shards_spec, ','))
        if (!trim(tok).empty())
          counts.push_back(parse_size(trim(tok), "shard count"));
      if (counts.empty())
        throw Error("loadgen: --shards wants counts like 1,2,4");
      std::vector<RunResult> runs;
      const std::size_t cross_mismatches = run_topology_sweep(
          reqs, counts, cli.get_int("kill-shard-at"), runs);
      std::size_t mismatches = cross_mismatches, errors = 0, repeats = 0;
      for (std::size_t t = 0; t < runs.size(); ++t) {
        const Audit a = audit_run(reqs, runs[t]);
        std::printf(
            "loadgen: topology %zu: %zu unique requests, %zu repeats, %zu "
            "byte-identity mismatches, %zu errors\n",
            counts[t], a.unique, a.repeats, a.mismatches, a.errors);
        mismatches += a.mismatches;
        errors += a.errors;
        repeats += a.repeats;
      }
      std::printf(
          "\nloadgen: sweep over %zu topologies: %zu repeats, %zu "
          "byte-identity mismatches (incl. %zu cross-topology), %zu "
          "errors\n",
          counts.size(), repeats, mismatches, cross_mismatches, errors);
      if (mismatches != 0 || errors != 0) {
        std::fprintf(stderr,
                     "loadgen: FAIL: sharded sweep broke the determinism "
                     "contract or dropped requests\n");
        return 1;
      }
      return 0;
    }

    RunResult run;
    const std::string connect = cli.get("connect");
    if (connect.empty()) {
      service::ServiceOptions opts;
      opts.num_workers = static_cast<std::size_t>(cli.get_int("workers"));
      opts.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
      opts.cache.max_bytes =
          static_cast<std::size_t>(cli.get_int("cache-mb")) << 20;
      opts.cache.cache_dir = cli.get("cache-dir");
      opts.cache.disk_budget_bytes =
          static_cast<std::size_t>(cli.get_int("disk-budget-mb")) << 20;
      run = run_inproc(reqs, opts);
    } else {
      const std::vector<std::string> parts = split_char(connect, ':');
      if (parts.size() != 2)
        throw Error("loadgen: --connect wants host:port, got '" + connect +
                    "'");
      run = run_tcp(reqs, parts[0],
                    static_cast<std::uint16_t>(parse_size(parts[1], "port")),
                    static_cast<std::size_t>(cli.get_int("window")));
    }

    const Audit a = audit_run(reqs, run);
    std::printf("\nloadgen: %zu requests in %.3f s (%.1f req/s)\n",
                reqs.size(), run.elapsed_seconds,
                static_cast<double>(reqs.size()) / run.elapsed_seconds);
    std::printf(
        "loadgen: %zu unique requests, %zu repeats, %zu byte-identity "
        "mismatches, %zu errors\n",
        a.unique, a.repeats, a.mismatches, a.errors);
    const std::size_t mismatches = a.mismatches, errors = a.errors;
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "loadgen: FAIL: repeated requests produced different "
                   "response bytes\n");
      return 1;
    }
    if (errors != 0) {
      std::fprintf(stderr, "loadgen: FAIL: %zu requests errored\n", errors);
      return 1;
    }

    // Restart-recovery audits: the id-neutralized response bytes of one
    // run, dumped to a file, must match a later run over a restarted
    // server byte for byte — disk-served warm responses included.
    std::string blob;
    for (const auto& resp : run.responses)
      blob += strip_id(response_wire(resp), resp.id);
    const std::string dump_path = cli.get("dump-responses");
    if (!dump_path.empty()) {
      std::ofstream dump(dump_path, std::ios::binary);
      dump << blob;
      if (!dump)
        throw Error("loadgen: cannot write --dump-responses file " +
                    dump_path);
      std::printf("loadgen: responses dumped to %s (%zu bytes)\n",
                  dump_path.c_str(), blob.size());
    }
    const std::string check_path = cli.get("check-responses");
    if (!check_path.empty()) {
      std::ifstream check(check_path, std::ios::binary);
      if (!check)
        throw Error("loadgen: cannot read --check-responses file " +
                    check_path);
      std::stringstream expect;
      expect << check.rdbuf();
      if (expect.str() != blob) {
        std::fprintf(stderr,
                     "loadgen: FAIL: responses differ from %s (%zu vs %zu "
                     "bytes)\n",
                     check_path.c_str(), blob.size(), expect.str().size());
        return 1;
      }
      std::printf("loadgen: responses byte-identical to %s\n",
                  check_path.c_str());
    }

    const double want_disk_rate = cli.get_double("expect-disk-hit-rate");
    if (want_disk_rate >= 0.0) {
      const double hits = run.metrics.count("storage_disk_hits") != 0
                              ? run.metrics.at("storage_disk_hits")
                              : 0.0;
      const double misses = run.metrics.count("storage_disk_misses") != 0
                                ? run.metrics.at("storage_disk_misses")
                                : 0.0;
      const double rate =
          hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
      std::printf("loadgen: disk hit rate %.1f%% (%g hits, %g misses)\n",
                  100.0 * rate, hits, misses);
      if (rate < want_disk_rate) {
        std::fprintf(stderr,
                     "loadgen: FAIL: disk hit rate %.3f below the expected "
                     "%.3f\n",
                     rate, want_disk_rate);
        return 1;
      }
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "specpart_loadgen: %s\n", e.what());
    return 1;
  }
}
