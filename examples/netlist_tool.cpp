// netlist_tool: partition a netlist file from the command line.
//
//   $ ./netlist_tool circuit.hgr --algo melo --k 2 --out parts.txt
//
// Reads hMETIS .hgr (or ACM/SIGDA .netD with --format netd), partitions
// with the chosen algorithm, reports quality, and optionally writes the
// cluster assignment (one id per line).
#include <cstdio>
#include <sstream>

#include "core/drivers.h"
#include "graph/netlist_io.h"
#include "part/fm.h"
#include "service/protocol.h"
#include "service/service.h"
#include "part/objectives.h"
#include "part/report.h"
#include "spectral/dprp.h"
#include "spectral/rsb.h"
#include "spectral/sb.h"
#include "util/budget.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/status.h"
#include "util/stringutil.h"

using namespace specpart;

int main(int argc, char** argv) {
  Cli cli("netlist_tool", "partition an .hgr/.netD netlist file");
  cli.add_flag("format", "hgr", "input format: hgr | netd");
  cli.add_flag("algo", "melo", "algorithm: melo | sb | rsb | fm");
  cli.add_flag("k", "2", "number of clusters (melo/rsb; sb/fm are 2-way)");
  cli.add_flag("d", "10", "eigenvectors for melo");
  cli.add_flag("balance", "0.45", "min cluster fraction for 2-way cuts");
  cli.add_flag("out", "", "write assignment to this file");
  cli.add_flag("report", "false", "print the full quality report");
  cli.add_flag("json", "false",
               "machine-readable output: print one JSON object with the same "
               "fields as a service response (melo only)");
  cli.add_flag("diag", "false", "print per-stage diagnostics after the run");
  cli.add_flag("deadline", "0",
               "compute budget in seconds (0 = unlimited); on exhaustion the "
               "best partition found so far is returned");
  cli.add_flag("threads", "1",
               "compute-kernel threads (1 = serial reference, 0 = auto: "
               "$SPECPART_THREADS or hardware concurrency)");
  cli.add_flag("solver", "scalar",
               "eigensolver backend for melo: " + core::solver_backend_tokens());
  cli.add_flag("objective", "unnormalized",
               "spectral objective for melo: " + core::objective_model_tokens() +
                   " (normalized = conductance sweep cut)");
  cli.add_flag("multilevel", "false",
               "melo: solve the eigenbasis through the coarsen/solve/refine "
               "V-cycle (falls back to a flat solve if refinement cannot "
               "certify the basis)");
  cli.add_flag("warm", "false",
               "pre-warm mode: compute and persist the eigenbasis of every "
               "listed netlist into --cache-dir, so a shard can serve warm "
               "before taking traffic (melo pipeline defaults)");
  cli.add_flag("cache-dir", "",
               "persistent basis-store directory for --warm");
  cli.add_flag("disk-budget-mb", "1024",
               "--warm: tier-2 store byte budget in MiB");
  try {
    if (!cli.parse(argc, argv)) return 0;

    if (cli.get_bool("warm")) {
      // Offline pre-warm: run each netlist through the exact serving path
      // (PartitionService with the tier-2 store configured), so the
      // persisted entries carry the same content keys live wire traffic
      // will look up — parity by construction, like --json.
      SP_CHECK_INPUT(!cli.get("cache-dir").empty(),
                     "--warm requires --cache-dir DIR");
      SP_CHECK_INPUT(!cli.positionals().empty(),
                     "usage: netlist_tool --warm --cache-dir DIR <file>...");
      service::ServiceOptions sopts;
      sopts.num_workers = 0;  // execute() runs on this thread
      sopts.cache.cache_dir = cli.get("cache-dir");
      sopts.cache.disk_budget_bytes =
          static_cast<std::size_t>(cli.get_int("disk-budget-mb")) << 20;
      sopts.deadline_seconds = cli.get_double("deadline");
      sopts.parallel = ParallelConfig::with_threads(
          static_cast<std::size_t>(cli.get_int("threads")));
      service::PartitionService svc(sopts);
      int failures = 0;
      for (const std::string& file : cli.positionals()) {
        service::PartitionRequest req;
        req.id = file;
        req.k = static_cast<std::uint32_t>(cli.get_int("k"));
        req.balance = cli.get_double("balance");
        req.graph = cli.get("format") == "netd"
                        ? graph::read_netd_file(file)
                        : graph::read_hgr_file(file);
        req.pipeline.num_eigenvectors =
            static_cast<std::size_t>(cli.get_int("d"));
        req.pipeline.num_starts = 3;
        req.pipeline.solver.backend =
            core::parse_solver_backend(cli.get("solver"));
        req.pipeline.objective =
            core::parse_objective_model(cli.get("objective"));
        if (cli.get_bool("multilevel"))
          req.pipeline.solver.strategy = core::SolverStrategy::kMultilevel;

        Diagnostics warm_diag;
        const service::PartitionResponse resp = svc.execute(req, &warm_diag);
        const auto ran_stage = [&warm_diag](const char* name) {
          for (const StageStats& s : warm_diag.stages())
            if (s.name == name) return true;
          return false;
        };
        const bool was_warm = ran_stage("embedding_cache_disk_hit") ||
                              ran_stage("embedding_cache_hit");
        if (!resp.ok()) ++failures;
        std::printf("%s: %s (%s)\n", file.c_str(),
                    resp.ok() ? (was_warm ? "already warm" : "warmed")
                              : "FAILED",
                    resp.ok() ? resp.status.c_str() : resp.error.c_str());
      }
      const service::MetricsSnapshot snap = svc.snapshot();
      std::printf("store %s: %zu entries, %zu bytes on disk, %llu spilled "
                  "this run (%llu failed)\n",
                  cli.get("cache-dir").c_str(), snap.storage.disk_entries,
                  snap.storage.bytes_on_disk,
                  static_cast<unsigned long long>(snap.storage.spills),
                  static_cast<unsigned long long>(snap.storage.spill_failures));
      return failures == 0 ? 0 : 1;
    }

    SP_CHECK_INPUT(cli.positionals().size() == 1,
                   "usage: netlist_tool <file> [flags]; see --help");
    const std::string path = cli.positionals()[0];
    Diagnostics diag;
    const graph::Hypergraph h = cli.get("format") == "netd"
                                    ? graph::read_netd_file(path)
                                    : graph::read_hgr_file(path, &diag);
    const bool json = cli.get_bool("json");
    if (!json)
      std::printf("%s: %zu modules, %zu nets, %zu pins\n", path.c_str(),
                  h.num_nodes(), h.num_nets(), h.num_pins());

    const std::string algo = cli.get("algo");
    const auto k = static_cast<std::uint32_t>(cli.get_int("k"));
    const double balance = cli.get_double("balance");

    if (json) {
      // Route through PartitionService::execute so this output is the same
      // object (same fields, same values) a specpart_server would return
      // for the equivalent request — parity by construction.
      SP_CHECK_INPUT(algo == "melo", "--json supports --algo melo only");
      service::ServiceOptions sopts;
      sopts.num_workers = 0;  // execute() runs on this thread
      sopts.cache.max_bytes = 0;
      sopts.deadline_seconds = cli.get_double("deadline");
      sopts.parallel = ParallelConfig::with_threads(
          static_cast<std::size_t>(cli.get_int("threads")));
      service::PartitionService svc(sopts);

      service::PartitionRequest req;
      req.id = path;
      req.k = k;
      req.balance = balance;
      req.graph = h;
      req.pipeline.num_eigenvectors =
          static_cast<std::size_t>(cli.get_int("d"));
      req.pipeline.num_starts = 3;
      req.pipeline.solver.backend = core::parse_solver_backend(cli.get("solver"));
      req.pipeline.objective = core::parse_objective_model(cli.get("objective"));
      if (cli.get_bool("multilevel"))
        req.pipeline.solver.strategy = core::SolverStrategy::kMultilevel;

      const service::PartitionResponse resp = svc.execute(req);
      std::printf("%s\n", service::response_to_json(resp).c_str());
      const std::string out = cli.get("out");
      if (!out.empty() && resp.ok())
        graph::write_partition_file(resp.assignment, out);
      return resp.status == "error" ? 1 : 0;
    }

    ComputeBudget budget;
    const double deadline = cli.get_double("deadline");
    ParallelConfig parallel;
    parallel.num_threads = static_cast<std::size_t>(cli.get_int("threads"));
    part::SolverInfo solver;
    solver.threads = parallel.threads();

    part::Partition p;
    if (algo == "melo") {
      core::MeloOptions m;
      m.num_eigenvectors = static_cast<std::size_t>(cli.get_int("d"));
      m.num_starts = 3;
      m.solver.backend = core::parse_solver_backend(cli.get("solver"));
      m.objective = core::parse_objective_model(cli.get("objective"));
      if (cli.get_bool("multilevel"))
        m.solver.strategy = core::SolverStrategy::kMultilevel;
      m.diagnostics = &diag;
      m.parallel = parallel;
      if (deadline > 0.0) {
        budget = ComputeBudget::with_deadline(deadline);
        m.budget = &budget;
      }
      solver.present = true;
      solver.eigenvectors_requested = m.num_eigenvectors;
      if (k == 2) {
        const auto r = core::melo_bipartition(h, m, balance);
        solver.eigen_converged = r.eigen_converged;
        solver.eigenvectors_used = r.eigenvectors_used;
        solver.budget_exhausted = r.budget_exhausted;
        if (m.objective == core::ObjectiveModel::kNormalizedSymmetric)
          std::printf("conductance = %.6g\n", r.conductance);
        p = r.partition;
      } else {
        const auto r = core::melo_multiway(h, k, m);
        solver.eigen_converged = r.eigen_converged;
        solver.eigenvectors_used = r.eigenvectors_used;
        solver.budget_exhausted = r.budget_exhausted;
        p = r.partition;
      }
      solver.fallbacks = diag.total_fallbacks();
    } else if (algo == "sb") {
      spectral::SbOptions so;
      so.min_fraction = balance;
      p = spectral::spectral_bipartition(h, so).partition;
    } else if (algo == "rsb") {
      p = spectral::rsb_partition(h, k, spectral::RsbOptions{});
    } else if (algo == "fm") {
      part::FmOptions fo;
      fo.balance = {balance, 1.0 - balance};
      if (deadline > 0.0) {
        budget = ComputeBudget::with_deadline(deadline);
        fo.budget = &budget;
      }
      StageTimerScope fm_scope(&diag, "fm");
      const auto r = part::fm_bipartition(h, fo);
      if (r.budget_exhausted) diag.mark_budget_exhausted("fm");
      p = r.partition;
    } else {
      throw Error("unknown --algo '" + algo + "'");
    }

    std::printf("algorithm %s: cut nets = %.0f", algo.c_str(),
                part::cut_nets(h, p));
    if (p.k() >= 2) std::printf(", scaled cost = %.3g", part::scaled_cost(h, p));
    std::printf(", cluster sizes =");
    for (std::uint32_t c = 0; c < p.k(); ++c)
      std::printf(" %zu", p.cluster_size(c));
    std::printf("\n");

    if (cli.get_bool("report")) {
      part::QualityReport qr = part::evaluate(h, p);
      qr.solver = solver;
      std::ostringstream report_out;
      part::print_report(qr, report_out);
      std::fputs(report_out.str().c_str(), stdout);
    }
    if (cli.get_bool("diag")) std::fputs(diag.to_string().c_str(), stdout);

    const std::string out = cli.get("out");
    if (!out.empty()) {
      graph::write_partition_file(p.assignment(), out);
      std::printf("assignment written to %s\n", out.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "netlist_tool: %s\n", e.what());
    return 1;
  }
}
