// Cluster extraction + spectral placement: the library beyond min-cut.
//
//   $ ./clustering_and_placement [--modules N] [--seed S]
//
// Generates a clustered circuit, (1) extracts natural clusters bottom-up
// with MELO orderings (no k given in advance), (2) computes Hall's
// 2-dimensional quadratic placement and reports its wirelength against a
// random placement, and (3) prints an ASCII scatter of the placement with
// one glyph per extracted cluster — eyeballing it shows the clusters land
// in separate regions of the plane.
#include <algorithm>
#include <cstdio>

#include "core/clustering.h"
#include "graph/generator.h"
#include "model/clique_models.h"
#include "part/objectives.h"
#include "spectral/placement.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/rng.h"

using namespace specpart;

int main(int argc, char** argv) {
  Cli cli("clustering_and_placement",
          "cluster extraction + Hall placement demo");
  cli.add_flag("modules", "240", "number of modules");
  cli.add_flag("seed", "9", "generator seed");
  try {
    if (!cli.parse(argc, argv)) return 0;

    graph::GeneratorConfig cfg;
    cfg.num_modules = static_cast<std::size_t>(cli.get_int("modules"));
    cfg.num_nets = cfg.num_modules * 2;
    cfg.num_clusters = 4;
    cfg.subclusters_per_cluster = 1;
    cfg.p_subcluster = 0.9;
    cfg.p_cluster = 0.0;
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const graph::Hypergraph h = graph::generate_netlist(cfg);
    std::printf("circuit: %zu modules, %zu nets (4 planted clusters)\n\n",
                h.num_nodes(), h.num_nets());

    // 1) Cluster extraction.
    core::ClusteringOptions copts;
    copts.min_cluster_fraction = 0.15;
    copts.max_cluster_fraction = 0.35;
    const core::ClusteringResult clusters = core::extract_clusters(h, copts);
    std::printf("extracted %u clusters, sizes:", clusters.num_clusters);
    for (std::uint32_t c = 0; c < clusters.partition.k(); ++c)
      std::printf(" %zu", clusters.partition.cluster_size(c));
    std::printf("\n  scaled cost = %.3g, cut nets = %.0f\n\n",
                part::scaled_cost(h, clusters.partition),
                part::cut_nets(h, clusters.partition));

    // 2) Hall placement vs a random placement.
    spectral::PlacementOptions popts;
    popts.dimensions = 2;
    const spectral::Placement placement = spectral::hall_placement(h, popts);
    const graph::Graph g =
        model::clique_expand(h, model::NetModel::kPartitioningSpecific);
    Rng rng(7);
    linalg::DenseMatrix random(placement.coords.rows(),
                               placement.coords.cols());
    for (std::size_t j = 0; j < random.cols(); ++j) {
      linalg::Vec col(random.rows());
      for (double& x : col) x = rng.next_normal();
      linalg::normalize(col);
      random.set_col(j, col);
    }
    std::printf("quadratic wirelength: Hall = %.4f, random = %.4f (%.1fx)\n\n",
                placement.quadratic_wirelength,
                spectral::quadratic_wirelength(g, random),
                spectral::quadratic_wirelength(g, random) /
                    placement.quadratic_wirelength);

    // 3) ASCII scatter, one glyph per extracted cluster.
    constexpr int kW = 64, kH = 24;
    char canvas[kH][kW + 1];
    for (auto& row : canvas) {
      std::fill(row, row + kW, '.');
      row[kW] = '\0';
    }
    double lo[2] = {1e300, 1e300}, hi[2] = {-1e300, -1e300};
    for (std::size_t i = 0; i < placement.coords.rows(); ++i)
      for (int a = 0; a < 2; ++a) {
        lo[a] = std::min(lo[a], placement.coords.at(i, a));
        hi[a] = std::max(hi[a], placement.coords.at(i, a));
      }
    for (std::size_t i = 0; i < placement.coords.rows(); ++i) {
      const int x = static_cast<int>((placement.coords.at(i, 0) - lo[0]) /
                                     (hi[0] - lo[0] + 1e-12) * (kW - 1));
      const int y = static_cast<int>((placement.coords.at(i, 1) - lo[1]) /
                                     (hi[1] - lo[1] + 1e-12) * (kH - 1));
      canvas[y][x] = static_cast<char>(
          'A' + clusters.partition.cluster_of(static_cast<graph::NodeId>(i)) %
                    26);
    }
    std::printf("placement (x = eigenvector 2, y = eigenvector 3; glyph = "
                "extracted cluster):\n");
    for (const auto& row : canvas) std::printf("  %s\n", row);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "clustering_and_placement: %s\n", e.what());
    return 1;
  }
}
